package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSum(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"mixed signs", []float64{1, -2, 3}, 2},
		{"zeros", []float64{0, 0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sum(tt.in); got != tt.want {
				t.Errorf("Sum(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestSumInts(t *testing.T) {
	if got := SumInts([]int{1, 2, 3}); got != 6 {
		t.Errorf("SumInts = %d, want 6", got)
	}
	if got := SumInts(nil); got != 0 {
		t.Errorf("SumInts(nil) = %d, want 0", got)
	}
	// Large values must not overflow int32 arithmetic.
	big := []int{math.MaxInt32, math.MaxInt32}
	if got := SumInts(big); got != 2*int64(math.MaxInt32) {
		t.Errorf("SumInts overflow: got %d", got)
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"constant", []float64{2, 2, 2}, 2},
		{"simple", []float64{1, 2, 3, 4}, 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
	// Population variance of (2,4,4,4,5,5,7,9) is 4.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{3, 3, 3}); got != 0 {
		t.Errorf("CV of constant = %v, want 0", got)
	}
	if got := CoefficientOfVariation([]float64{0, 0}); got != 0 {
		t.Errorf("CV of zeros = %v, want 0", got)
	}
	if got := CoefficientOfVariation([]float64{-1, 1}); !math.IsInf(got, 1) {
		t.Errorf("CV with zero mean and spread = %v, want +Inf", got)
	}
	got := CoefficientOfVariation([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 2.0/5.0, 1e-12) {
		t.Errorf("CV = %v, want 0.4", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = (%v, %v), want (0, 0)", min, max)
	}
	min, max = MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	imin, imax := MinMaxInts([]int{5})
	if imin != 5 || imax != 5 {
		t.Errorf("MinMaxInts singleton = (%d, %d)", imin, imax)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(out[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	constant := Normalize([]float64{4, 4})
	if constant[0] != 0 || constant[1] != 0 {
		t.Errorf("Normalize constant = %v, want zeros", constant)
	}
}

func TestIntsToFloats(t *testing.T) {
	out := IntsToFloats([]int{1, 2})
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Errorf("IntsToFloats = %v", out)
	}
}

// Property: the mean always lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		min, max := MinMax(clean)
		return m >= min-1e-6 && m <= max+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is non-negative and zero for constant sequences.
func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		return Variance(clean) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: normalization output is always within [0, 1].
func TestNormalizeRangeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		for _, v := range Normalize(clean) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
