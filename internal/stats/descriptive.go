// Package stats provides the statistics substrate used throughout the SPES
// reproduction: descriptive statistics, quantiles, modes, histograms, a
// discrete Kolmogorov-Smirnov test, and Poisson utilities.
//
// All functions operate on plain slices and never mutate their inputs unless
// explicitly documented. Empty inputs yield zero values rather than panics so
// that callers handling sparse invocation data do not need to special-case
// every infrequently invoked function.
package stats

import "math"

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// SumInts returns the sum of xs as an int64 to avoid overflow on long traces.
func SumInts(xs []int) int64 {
	var s int64
	for _, x := range xs {
		s += int64(x)
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoefficientOfVariation returns StdDev(xs)/Mean(xs).
//
// The coefficient of variation (CV) is the dispersion measure SPES uses to
// decide whether a waiting-time sequence is close enough to constant to call
// the function "regular" (CV <= 0.01 in the paper). A zero mean yields 0 when
// the sequence is all zeros (no dispersion) and +Inf otherwise.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if m == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / m
}

// MinMax returns the minimum and maximum of xs. It returns (0, 0) for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// MinMaxInts returns the minimum and maximum of xs. It returns (0, 0) for an
// empty slice.
func MinMaxInts(xs []int) (min, max int) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// IntsToFloats converts an int slice to a freshly allocated float64 slice.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Normalize scales xs into [0, 1] by min-max normalization, returning a new
// slice. A constant sequence maps to all zeros.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	min, max := MinMax(xs)
	span := max - min
	if span == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - min) / span
	}
	return out
}
