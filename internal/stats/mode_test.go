package stats

import (
	"testing"
	"testing/quick"
)

func TestFrequencyTable(t *testing.T) {
	table := FrequencyTable([]int{3, 1, 3, 2, 3, 1})
	want := []ModeCount{{3, 3}, {1, 2}, {2, 1}}
	if len(table) != len(want) {
		t.Fatalf("table = %v, want %v", table, want)
	}
	for i := range want {
		if table[i] != want[i] {
			t.Errorf("table[%d] = %v, want %v", i, table[i], want[i])
		}
	}
}

func TestFrequencyTableTieBreak(t *testing.T) {
	// Equal counts must be ordered by ascending value for determinism.
	table := FrequencyTable([]int{5, 2, 5, 2})
	if table[0].Value != 2 || table[1].Value != 5 {
		t.Errorf("tie-break order = %v, want value-ascending", table)
	}
}

func TestFrequencyTableEmpty(t *testing.T) {
	if table := FrequencyTable(nil); table != nil {
		t.Errorf("FrequencyTable(nil) = %v, want nil", table)
	}
}

func TestModes(t *testing.T) {
	xs := []int{4, 4, 4, 7, 7, 9}
	if got := Modes(xs, 2); len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Errorf("Modes = %v, want [4 7]", got)
	}
	if got := Modes(xs, 10); len(got) != 3 {
		t.Errorf("Modes with n>distinct = %v, want 3 values", got)
	}
	if got := Modes(nil, 3); len(got) != 0 {
		t.Errorf("Modes(nil) = %v, want empty", got)
	}
}

func TestMode(t *testing.T) {
	v, c := Mode([]int{1, 2, 2, 3})
	if v != 2 || c != 2 {
		t.Errorf("Mode = (%d, %d), want (2, 2)", v, c)
	}
	v, c = Mode(nil)
	if v != 0 || c != 0 {
		t.Errorf("Mode(nil) = (%d, %d), want (0, 0)", v, c)
	}
}

func TestModesCoverage(t *testing.T) {
	// (1439 x4, 3 x1): top-1 mode covers 4 of 5.
	xs := []int{1439, 1439, 1439, 1439, 3}
	if got := ModesCoverage(xs, 1); got != 4 {
		t.Errorf("ModesCoverage(1) = %d, want 4", got)
	}
	if got := ModesCoverage(xs, 2); got != 5 {
		t.Errorf("ModesCoverage(2) = %d, want 5", got)
	}
	if got := ModesCoverage(nil, 1); got != 0 {
		t.Errorf("ModesCoverage(nil) = %d, want 0", got)
	}
}

func TestModeRange(t *testing.T) {
	min, max, ok := ModeRange([]int{5, 5, 9, 9, 2}, 2)
	if !ok || min != 5 || max != 9 {
		t.Errorf("ModeRange = (%d, %d, %v), want (5, 9, true)", min, max, ok)
	}
	_, _, ok = ModeRange(nil, 2)
	if ok {
		t.Error("ModeRange(nil) ok = true, want false")
	}
}

func TestRepeatedValues(t *testing.T) {
	got := RepeatedValues([]int{8, 8, 8, 2, 2, 5})
	if len(got) != 2 || got[0] != 8 || got[1] != 2 {
		t.Errorf("RepeatedValues = %v, want [8 2]", got)
	}
	if got := RepeatedValues([]int{1, 2, 3}); len(got) != 0 {
		t.Errorf("RepeatedValues all-unique = %v, want empty", got)
	}
}

// Property: counts in the frequency table sum to len(xs) and are
// non-increasing.
func TestFrequencyTableInvariants(t *testing.T) {
	f := func(xs []int) bool {
		table := FrequencyTable(xs)
		total := 0
		for i, mc := range table {
			total += mc.Count
			if mc.Count <= 0 {
				return false
			}
			if i > 0 && table[i-1].Count < mc.Count {
				return false
			}
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ModesCoverage is monotone in n and bounded by len(xs).
func TestModesCoverageMonotoneProperty(t *testing.T) {
	f := func(xs []int, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		a := ModesCoverage(xs, n)
		b := ModesCoverage(xs, n+1)
		return a <= b && b <= len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
