package stats

import (
	"math"
	"testing"
)

func TestKSTestUniformAcceptsUniform(t *testing.T) {
	g := NewRNG(42)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = g.Float64()
	}
	res := KSTest(xs, UniformCDF(0, 1))
	if res.Rejects(0.05) {
		t.Errorf("uniform sample rejected as uniform: D=%v p=%v", res.Statistic, res.PValue)
	}
	if res.N != 500 {
		t.Errorf("N = %d, want 500", res.N)
	}
}

func TestKSTestUniformRejectsExponential(t *testing.T) {
	g := NewRNG(7)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = g.Exponential(3) // mass near 0, clearly not Uniform(0,1)
	}
	res := KSTest(xs, UniformCDF(0, 1))
	if !res.Rejects(0.05) {
		t.Errorf("exponential sample not rejected as uniform: D=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestKSTestExponentialAcceptsExponential(t *testing.T) {
	g := NewRNG(11)
	rate := 0.5
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = g.Exponential(rate)
	}
	res := KSTest(xs, ExponentialCDF(rate))
	if res.Rejects(0.05) {
		t.Errorf("exponential sample rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestKSTestEmpty(t *testing.T) {
	res := KSTest(nil, UniformCDF(0, 1))
	if res.N != 0 || res.Statistic != 0 {
		t.Errorf("empty KSTest = %+v", res)
	}
}

func TestKSPValueBounds(t *testing.T) {
	if p := ksPValue(0, 100); p != 1 {
		t.Errorf("p(d=0) = %v, want 1", p)
	}
	if p := ksPValue(1, 100); p != 0 {
		t.Errorf("p(d=1) = %v, want 0", p)
	}
	p := ksPValue(0.05, 100)
	if p <= 0 || p >= 1 {
		t.Errorf("p(0.05, 100) = %v, want in (0, 1)", p)
	}
	// Larger statistic => smaller p.
	if ksPValue(0.2, 100) >= ksPValue(0.1, 100) {
		t.Error("p-value not decreasing in D")
	}
}

func TestPoissonCDF(t *testing.T) {
	cdf := PoissonCDF(2)
	if got := cdf(-1); got != 0 {
		t.Errorf("PoissonCDF(-1) = %v, want 0", got)
	}
	// P(X <= 0) = e^-2.
	if got := cdf(0); !almostEqual(got, math.Exp(-2), 1e-9) {
		t.Errorf("PoissonCDF(0) = %v, want e^-2", got)
	}
	// CDF approaches 1 for large x.
	if got := cdf(50); !almostEqual(got, 1, 1e-9) {
		t.Errorf("PoissonCDF(50) = %v, want ~1", got)
	}
	// Monotone.
	if cdf(1) >= cdf(3) {
		t.Error("PoissonCDF not increasing")
	}
}

func TestExponentialCDF(t *testing.T) {
	cdf := ExponentialCDF(1)
	if got := cdf(0); got != 0 {
		t.Errorf("ExpCDF(0) = %v, want 0", got)
	}
	if got := cdf(1); !almostEqual(got, 1-math.Exp(-1), 1e-12) {
		t.Errorf("ExpCDF(1) = %v", got)
	}
}

func TestUniformCDF(t *testing.T) {
	cdf := UniformCDF(2, 4)
	cases := []struct{ x, want float64 }{{1, 0}, {2, 0}, {3, 0.5}, {4, 1}, {5, 1}}
	for _, c := range cases {
		if got := cdf(c.x); got != c.want {
			t.Errorf("UniformCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
