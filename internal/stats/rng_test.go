package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(99)
	b := NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestPoissonMean(t *testing.T) {
	g := NewRNG(1)
	for _, lambda := range []float64{0.5, 3, 50} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(g.Poisson(lambda))
		}
		mean := sum / float64(n)
		tol := 4 * math.Sqrt(lambda/float64(n)) // ~4 sigma
		if math.Abs(mean-lambda) > tol {
			t.Errorf("Poisson(%v) sample mean = %v, want within %v", lambda, mean, tol)
		}
	}
	if got := g.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := g.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", got)
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(2)
	rate := 2.0
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exponential(rate)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exp(2) sample mean = %v, want ~0.5", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto sample %v below xm=2", v)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// With alpha close to 1 a noticeable fraction of samples should exceed
	// 10x the minimum — that tail is what creates Figure 3's imbalance.
	g := NewRNG(4)
	n := 10000
	over := 0
	for i := 0; i < n; i++ {
		if g.Pareto(1, 1.1) > 10 {
			over++
		}
	}
	frac := float64(over) / float64(n)
	if frac < 0.03 || frac > 0.2 {
		t.Errorf("P(X > 10) = %v, want roughly 10^-1.1", frac)
	}
}

func TestZipfBounds(t *testing.T) {
	g := NewRNG(5)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		k := g.Zipf(5, 1.2)
		if k < 0 || k >= 5 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 should dominate rank 4.
	if counts[0] <= counts[4] {
		t.Errorf("Zipf not skewed: %v", counts)
	}
	if got := g.Zipf(1, 1); got != 0 {
		t.Errorf("Zipf(n=1) = %d, want 0", got)
	}
	if got := g.Zipf(0, 1); got != 0 {
		t.Errorf("Zipf(n=0) = %d, want 0", got)
	}
}

func TestIntBetween(t *testing.T) {
	g := NewRNG(6)
	for i := 0; i < 1000; i++ {
		v := g.IntBetween(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntBetween out of range: %d", v)
		}
	}
	if v := g.IntBetween(4, 4); v != 4 {
		t.Errorf("IntBetween(4,4) = %d", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("IntBetween(5,4) should panic")
		}
	}()
	g.IntBetween(5, 4)
}

func TestJitter(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := g.Jitter(10, 3, 1)
		if v < 7 || v > 13 {
			t.Fatalf("Jitter out of range: %d", v)
		}
	}
	if v := g.Jitter(0, 0, 2); v != 2 {
		t.Errorf("Jitter min clamp = %d, want 2", v)
	}
	// min clamp with spread.
	for i := 0; i < 100; i++ {
		if v := g.Jitter(1, 5, 1); v < 1 {
			t.Fatalf("Jitter below min: %d", v)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	g := NewRNG(8)
	counts := make([]int, 3)
	for i := 0; i < 9000; i++ {
		counts[g.WeightedChoice([]float64{1, 2, 6})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Errorf("WeightedChoice distribution wrong: %v", counts)
	}
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("empty", func() { g.WeightedChoice(nil) })
	assertPanics("zero total", func() { g.WeightedChoice([]float64{0, 0}) })
	assertPanics("negative", func() { g.WeightedChoice([]float64{1, -1}) })
}

func TestSplitIndependence(t *testing.T) {
	g := NewRNG(10)
	child1 := g.Split()
	// The parent's subsequent draws must not change the child stream already
	// created; a second child from a fresh parent at the same point matches.
	h := NewRNG(10)
	child2 := h.Split()
	for i := 0; i < 50; i++ {
		if child1.Float64() != child2.Float64() {
			t.Fatal("Split children with identical lineage differ")
		}
	}
}

func TestBool(t *testing.T) {
	g := NewRNG(11)
	trues := 0
	n := 10000
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / float64(n)
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

func TestNormal(t *testing.T) {
	g := NewRNG(12)
	n := 20000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := g.Normal(5, 2)
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(ss/float64(n) - mean*mean)
	if math.Abs(mean-5) > 0.1 || math.Abs(sd-2) > 0.1 {
		t.Errorf("Normal(5,2) sample mean=%v sd=%v", mean, sd)
	}
}

func TestPerm(t *testing.T) {
	g := NewRNG(13)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}
