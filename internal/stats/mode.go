package stats

import "sort"

// ModeCount is one entry of a frequency table: a value and how many times it
// occurs.
type ModeCount struct {
	Value int
	Count int
}

// FrequencyTable returns the distinct values of xs with their occurrence
// counts, ordered by descending count and ascending value among ties. The
// deterministic tie-break keeps categorization reproducible run to run.
// Counting runs over a sorted copy rather than a hash map: the offline
// categorization calls this for every function (several times under the
// slack cascade), and an int sort plus a run-length scan is much cheaper
// than map inserts at these sizes.
func FrequencyTable(xs []int) []ModeCount {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	sort.Ints(sorted)
	return FrequencyTableSorted(sorted)
}

// FrequencyTableSorted is FrequencyTable over an already ascending-sorted
// slice, for callers that have sorted the data anyway. Behaviour on
// unsorted input is undefined.
func FrequencyTableSorted(sorted []int) []ModeCount {
	if len(sorted) == 0 {
		return nil
	}
	var table []ModeCount
	runStart := 0
	for i := 1; i <= len(sorted); i++ {
		if i == len(sorted) || sorted[i] != sorted[runStart] {
			table = append(table, ModeCount{Value: sorted[runStart], Count: i - runStart})
			runStart = i
		}
	}
	sort.Slice(table, func(i, j int) bool {
		if table[i].Count != table[j].Count {
			return table[i].Count > table[j].Count
		}
		return table[i].Value < table[j].Value
	})
	return table
}

// Modes returns the n most frequent values of xs (fewer if xs has fewer
// distinct values), most frequent first. This implements the paper's
// Mode_n({WT}) operator used by the appro-regular and dense definitions.
func Modes(xs []int, n int) []int {
	table := FrequencyTable(xs)
	if n > len(table) {
		n = len(table)
	}
	out := make([]int, 0, n)
	for _, mc := range table[:n] {
		out = append(out, mc.Value)
	}
	return out
}

// Mode returns the single most frequent value of xs and its count. For an
// empty slice it returns (0, 0).
func Mode(xs []int) (value, count int) {
	table := FrequencyTable(xs)
	if len(table) == 0 {
		return 0, 0
	}
	return table[0].Value, table[0].Count
}

// ModesCoverage returns the total occurrence count of the n most frequent
// values of xs. The appro-regular definition requires this to reach 90% of
// the sequence length.
func ModesCoverage(xs []int, n int) int {
	table := FrequencyTable(xs)
	if n > len(table) {
		n = len(table)
	}
	total := 0
	for _, mc := range table[:n] {
		total += mc.Count
	}
	return total
}

// ModeRange returns [min, max] over the k most frequent values of xs. This is
// the "dense" type's predictive-value range. ok is false when xs is empty.
func ModeRange(xs []int, k int) (min, max int, ok bool) {
	modes := Modes(xs, k)
	if len(modes) == 0 {
		return 0, 0, false
	}
	min, max = MinMaxInts(modes)
	return min, max, true
}

// RepeatedValues returns the values of xs occurring strictly more than once,
// most frequent first. The "possible" type uses these as predictive values.
func RepeatedValues(xs []int) []int {
	table := FrequencyTable(xs)
	var out []int
	for _, mc := range table {
		if mc.Count > 1 {
			out = append(out, mc.Value)
		}
	}
	return out
}
