package baselines

import (
	"fmt"
	"slices"

	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// HybridConfig parameterizes the histogram policy of Shahrad et al.
// (ATC'20, "Serverless in the Wild"), with the defaults their paper and the
// reproduction the SPES authors relied on use.
type HybridConfig struct {
	RangeMins       int     // histogram span (240 minutes = 4 hours)
	MinObservations int64   // below this the pattern is "insufficient"
	OOBMax          float64 // above this out-of-bounds share, fall back
	CVMax           float64 // above this coefficient of variation, fall back
	PrewarmPct      float64 // head percentile driving the pre-warm window (0.05)
	KeepAlivePct    float64 // tail percentile driving the keep-alive window (0.99)
	Margin          float64 // safety margin: shrink pre-warm, grow keep-alive (0.10)
	FallbackKeep    int     // keep-alive when the histogram is unusable

	// MapAgenda selects the retained map-backed agenda instead of the
	// timing wheel — the reference engine the equivalence tests run the
	// default event engine against (the baseline counterpart of
	// core.Config.DenseScan). Results are bit-identical either way.
	MapAgenda bool
}

// DefaultHybridConfig returns the original paper's settings.
func DefaultHybridConfig() HybridConfig {
	return HybridConfig{
		RangeMins:       240,
		MinObservations: 5,
		OOBMax:          0.5,
		CVMax:           2.0,
		PrewarmPct:      0.05,
		KeepAlivePct:    0.99,
		Margin:          0.10,
		FallbackKeep:    240,
	}
}

// spanSlots bounds how far ahead the policy ever schedules: the margin-grown
// histogram tail plus slack, or the fallback keep-alive, whichever is
// larger. Deadlines beyond it (impossible under this config, but harmless)
// land in the wheel's overflow map.
func (cfg HybridConfig) spanSlots() int {
	span := int(float64(cfg.RangeMins)*(1+cfg.Margin)) + 2
	if cfg.FallbackKeep+2 > span {
		span = cfg.FallbackKeep + 2
	}
	return span
}

// hybridUnit is the per-unit (function or application) histogram state. The
// histogram is allocated on the first observed inter-arrival time: at large
// scale most functions never accumulate one, and a nil histogram just means
// "insufficient pattern" — exactly the fallback an empty histogram selects.
type hybridUnit struct {
	hist *stats.Histogram
	last int // last invocation slot, -1 when never

	// Cached windows, recomputed when the histogram changes.
	prewarm   int // unload for this many slots after an invocation
	keepalive int // then stay loaded this many slots
	usable    bool
	dirty     bool
}

// addIAT charges one inter-arrival observation, allocating the histogram
// lazily.
func (u *hybridUnit) addIAT(iat float64, rangeMins int) {
	if u.hist == nil {
		u.hist = stats.NewHistogram(0, 1, rangeMins)
	}
	u.hist.Add(iat)
	u.dirty = true
}

// windows derives (prewarm, keepalive) from the unit's histogram per the
// head/tail rule, or flags the unit unusable for the fallback.
func (u *hybridUnit) windows(cfg HybridConfig) {
	u.dirty = false
	u.usable = false
	if u.hist == nil || u.hist.TotalWithOOB() < cfg.MinObservations {
		return
	}
	if u.hist.OOBFraction() > cfg.OOBMax {
		return
	}
	cv, ok := u.hist.CV()
	if !ok || cv > cfg.CVMax {
		return
	}
	head, ok1 := u.hist.Percentile(cfg.PrewarmPct)
	tail, ok2 := u.hist.Percentile(cfg.KeepAlivePct)
	if !ok1 || !ok2 {
		return
	}
	u.prewarm = int(head * (1 - cfg.Margin))
	u.keepalive = int(tail*(1+cfg.Margin)) - u.prewarm
	if u.keepalive < 1 {
		u.keepalive = 1
	}
	u.usable = true
}

// Hybrid implements the histogram policy at either function or application
// granularity. At application granularity (HA) all of an application's
// functions load and unload together, driven by the application's aggregate
// inter-arrival histogram.
type Hybrid struct {
	cfg     HybridConfig
	appWise bool

	units  []hybridUnit
	unitOf []int   // function -> unit index
	fanout [][]int // unit -> functions (identity at function granularity)
	set    *loadedSet
	wheel  *sched.Agenda // event engine (default)
	ref    *agenda       // reference engine (cfg.MapAgenda)
	nFuncs int

	// seenEpoch dedups unit arrivals within a slot: stamped entries match
	// epoch, which increments every Tick — the alloc-free replacement for a
	// per-Tick map.
	seenEpoch []uint32
	epoch     uint32
}

const (
	actUnload  = 0
	actPrewarm = 1
)

// NewHybridFunction returns Hybrid-Function (HF): one histogram per
// function.
func NewHybridFunction(cfg HybridConfig) *Hybrid {
	return &Hybrid{cfg: cfg}
}

// NewHybridApplication returns Hybrid-Application (HA): one histogram per
// application, the original paper's granularity.
func NewHybridApplication(cfg HybridConfig) *Hybrid {
	return &Hybrid{cfg: cfg, appWise: true}
}

// Name implements sim.Policy.
func (p *Hybrid) Name() string {
	if p.appWise {
		return "Hybrid-Application"
	}
	return "Hybrid-Function"
}

// Train implements sim.Policy: build units and charge training inter-arrival
// times into their histograms.
func (p *Hybrid) Train(training *trace.Trace) {
	p.nFuncs = training.NumFunctions()
	p.set = newLoadedSet(p.nFuncs)

	if p.appWise {
		apps := training.AppFunctions()
		p.unitOf = make([]int, p.nFuncs)
		idx := 0
		// Deterministic unit ordering: first function's ID per app.
		for fid := 0; fid < p.nFuncs; fid++ {
			app := training.Functions[fid].App
			fns := apps[app]
			if fns == nil {
				continue
			}
			if int(fns[0]) != fid {
				continue // only the app's first function creates the unit
			}
			members := make([]int, len(fns))
			for i, f := range fns {
				members[i] = int(f)
				p.unitOf[f] = idx
			}
			p.fanout = append(p.fanout, members)
			idx++
		}
	} else {
		p.unitOf = make([]int, p.nFuncs)
		p.fanout = make([][]int, p.nFuncs)
		for fid := 0; fid < p.nFuncs; fid++ {
			p.unitOf[fid] = fid
			p.fanout[fid] = []int{fid}
		}
	}

	p.units = make([]hybridUnit, len(p.fanout))
	for i := range p.units {
		p.units[i] = hybridUnit{last: -1}
	}
	p.seenEpoch = make([]uint32, len(p.units))
	if p.cfg.MapAgenda {
		p.ref = newAgenda(len(p.units))
	} else {
		p.wheel = sched.NewAgenda(len(p.units), p.cfg.spanSlots())
	}

	// Feed training IATs at unit granularity, then carry end-of-training
	// state into the simulation: the unit behaves as if the policy had been
	// running during training, so its last pre-warm/keep-alive window may
	// straddle the boundary.
	for i, members := range p.fanout {
		var slots []int32
		for _, f := range members {
			for _, e := range training.Series[f] {
				slots = append(slots, e.Slot)
			}
		}
		slots = dedupSortInt32(slots)
		unit := &p.units[i]
		for j := 1; j < len(slots); j++ {
			unit.addIAT(float64(slots[j]-slots[j-1]), p.cfg.RangeMins)
		}
		unit.windows(p.cfg)
		if len(slots) == 0 {
			continue
		}
		rebased := int(slots[len(slots)-1]) - training.Slots
		unit.last = rebased
		p.seedWindows(i, rebased)
	}
}

// seedWindows schedules the load/unload actions a unit's last (rebased,
// negative) invocation implies on the simulation timeline.
func (p *Hybrid) seedWindows(u, rebased int) {
	unit := &p.units[u]
	if unit.usable && unit.prewarm > 1 {
		start := rebased + unit.prewarm
		end := start + unit.keepalive
		if end <= 0 {
			return
		}
		if start <= 0 {
			p.loadUnit(u)
		} else {
			p.schedule(-1, start, u, actPrewarm)
		}
		p.schedule(-1, end, u, actUnload)
		return
	}
	keep := p.cfg.FallbackKeep
	if unit.usable {
		keep = unit.keepalive
	}
	if end := rebased + keep; end > 0 {
		p.loadUnit(u)
		p.schedule(-1, end, u, actUnload)
	}
}

// Tick implements sim.Policy.
func (p *Hybrid) Tick(t int, invs []trace.FuncCount) {
	// Unit-level arrivals (deduplicated per slot via the epoch stamps).
	p.epoch++
	for _, fc := range invs {
		u := p.unitOf[fc.Func]
		if p.seenEpoch[u] == p.epoch {
			continue
		}
		p.seenEpoch[u] = p.epoch
		unit := &p.units[u]
		if unit.last >= 0 {
			unit.addIAT(float64(t-unit.last), p.cfg.RangeMins)
		}
		unit.last = t
		if unit.dirty {
			unit.windows(p.cfg)
		}
		p.bump(u)
		p.loadUnit(u)
		if unit.usable && unit.prewarm > 1 {
			// Unload after execution, pre-warm shortly before the predicted
			// next arrival, give up at the keep-alive horizon.
			p.schedule(t, t+1, u, actUnload)
			p.schedule(t, t+unit.prewarm, u, actPrewarm)
			p.schedule(t, t+unit.prewarm+unit.keepalive, u, actUnload)
		} else if unit.usable {
			// Degenerate head: plain keep-alive of the tail window.
			p.schedule(t, t+unit.keepalive, u, actUnload)
		} else {
			p.schedule(t, t+p.cfg.FallbackKeep, u, actUnload)
		}
	}

	p.drainAt(t)
}

func (p *Hybrid) bump(u int) {
	if p.ref != nil {
		p.ref.bump(u)
		return
	}
	p.wheel.Bump(u)
}

func (p *Hybrid) schedule(current, slot, u, what int) {
	if p.ref != nil {
		p.ref.schedule(slot, u, what)
		return
	}
	p.wheel.Schedule(current, slot, u, what)
}

func (p *Hybrid) drainAt(t int) {
	apply := func(owner, what int) {
		switch what {
		case actUnload:
			p.unloadUnit(owner)
		case actPrewarm:
			p.loadUnit(owner)
		}
	}
	if p.ref != nil {
		p.ref.drain(t, apply)
		return
	}
	p.wheel.Drain(t, apply)
}

// NextWake implements sim.IdleSkipper: the earliest slot in (after, limit]
// holding a scheduled action, -1 when there is none. The map-backed
// reference engine reports ok=false so it stays on the per-slot path.
func (p *Hybrid) NextWake(after, limit int) (int, bool) {
	if p.wheel == nil {
		return 0, false
	}
	return p.wheel.Next(after, limit), true
}

func (p *Hybrid) loadUnit(u int) {
	for _, f := range p.fanout[u] {
		p.set.add(trace.FuncID(f))
	}
}

func (p *Hybrid) unloadUnit(u int) {
	for _, f := range p.fanout[u] {
		p.set.remove(trace.FuncID(f))
	}
}

// Loaded implements sim.Policy.
func (p *Hybrid) Loaded(f trace.FuncID) bool { return p.set.has(f) }

// LoadedCount implements sim.Policy.
func (p *Hybrid) LoadedCount() int { return p.set.count }

func dedupSortInt32(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	slices.Sort(xs)
	out := xs[:1]
	for _, v := range xs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// String renders the policy configuration for reports.
func (p *Hybrid) String() string {
	return fmt.Sprintf("%s(range=%dm, head=%.0f%%, tail=%.0f%%)",
		p.Name(), p.cfg.RangeMins, p.cfg.PrewarmPct*100, p.cfg.KeepAlivePct*100)
}

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (p *Hybrid) TakeLoadDeltas() ([]trace.FuncID, bool) { return p.set.takeDeltas() }
