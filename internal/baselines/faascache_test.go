package baselines

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestFaaSCacheKeepsUnderCapacity(t *testing.T) {
	// Two functions, capacity 2: nothing ever evicted, everything warm
	// after first touch.
	full := trace.NewTrace(200)
	full.AddFunction("a", "app", "u", trace.TriggerHTTP, []trace.Event{
		{Slot: 100, Count: 1}, {Slot: 150, Count: 1},
	})
	full.AddFunction("b", "app", "u", trace.TriggerHTTP, []trace.Event{
		{Slot: 110, Count: 1}, {Slot: 160, Count: 1},
	})
	train, simTr := full.Split(90)
	p := NewFaaSCache(2)
	res, err := sim.Run(p, train, simTr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalColdStarts != 2 {
		t.Errorf("cold starts = %d, want 2 (first touch each)", res.TotalColdStarts)
	}
	if res.MaxLoaded != 2 {
		t.Errorf("max loaded = %d", res.MaxLoaded)
	}
}

func TestFaaSCacheEvictsLowFrequency(t *testing.T) {
	// Capacity 1, function a invoked often, b once in between: b's arrival
	// evicts nothing until over capacity; then the lower-priority entry
	// (lower frequency) goes.
	p := NewFaaSCache(1)
	tr := trace.NewTrace(1)
	tr.AddFunction("a", "app", "u", trace.TriggerHTTP, nil)
	tr.AddFunction("b", "app", "u", trace.TriggerHTTP, nil)
	p.Train(tr)

	// a invoked at t=0,1,2 -> freq 3. b at t=3 -> freq 1; capacity forces
	// one eviction: b has priority clock+1, a has clock+3 -> b evicted.
	for t0 := 0; t0 < 3; t0++ {
		p.Tick(t0, []trace.FuncCount{{Func: 0, Count: 1}})
	}
	p.Tick(3, []trace.FuncCount{{Func: 1, Count: 1}})
	if !p.Loaded(0) || p.Loaded(1) {
		t.Errorf("loaded = (%v, %v), want a kept, b evicted", p.Loaded(0), p.Loaded(1))
	}
	if p.LoadedCount() != 1 {
		t.Errorf("count = %d", p.LoadedCount())
	}
}

func TestFaaSCacheClockAging(t *testing.T) {
	// After evictions raise the clock, a newly inserted function outranks a
	// long-idle frequent one.
	p := NewFaaSCache(1)
	tr := trace.NewTrace(1)
	for i := 0; i < 3; i++ {
		tr.AddFunction("f", "app", "u", trace.TriggerHTTP, nil)
	}
	p.Train(tr)
	// f0 heavily invoked -> freq 10.
	for t0 := 0; t0 < 10; t0++ {
		p.Tick(t0, []trace.FuncCount{{Func: 0, Count: 1}})
	}
	// f1 and f2 take turns; each insertion evicts the previous resident and
	// ratchets the clock past f0's priority eventually.
	p.Tick(10, []trace.FuncCount{{Func: 1, Count: 1}}) // evicts f0? f0 prio=10, f1 prio=clock+1=1 -> f1 evicted immediately
	// Since f1's own arrival makes it resident then over-capacity, the heap
	// pops the min-priority entry which is f1 itself (prio 1 < 10).
	if !p.Loaded(0) {
		t.Error("f0 should survive its first challenger")
	}
	// Clock is now 1. Repeated challengers keep bumping the clock: after
	// many rounds a fresh function's clock+1 exceeds f0's stale 10.
	for t0 := 11; t0 < 40; t0++ {
		f := trace.FuncID(1 + t0%2)
		p.Tick(t0, []trace.FuncCount{{Func: f, Count: 1}})
	}
	if p.Loaded(0) {
		t.Error("f0 should eventually age out via the GDSF clock")
	}
}

func TestFaaSCachePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	NewFaaSCache(0)
}

func TestLCSEvictsLeastRecentlyUsed(t *testing.T) {
	p := NewLCS(2)
	tr := trace.NewTrace(1)
	for i := 0; i < 3; i++ {
		tr.AddFunction("f", "app", "u", trace.TriggerHTTP, nil)
	}
	p.Train(tr)
	p.Tick(0, []trace.FuncCount{{Func: 0, Count: 1}})
	p.Tick(1, []trace.FuncCount{{Func: 1, Count: 1}})
	p.Tick(2, []trace.FuncCount{{Func: 0, Count: 1}}) // refresh f0
	p.Tick(3, []trace.FuncCount{{Func: 2, Count: 1}}) // evicts f1 (LRU)
	if p.Loaded(1) {
		t.Error("f1 should be evicted as LRU")
	}
	if !p.Loaded(0) || !p.Loaded(2) {
		t.Error("f0 and f2 should be resident")
	}
	if p.LoadedCount() != 2 {
		t.Errorf("count = %d", p.LoadedCount())
	}
}

func TestLCSSameSlotBurst(t *testing.T) {
	p := NewLCS(2)
	tr := trace.NewTrace(1)
	for i := 0; i < 4; i++ {
		tr.AddFunction("f", "app", "u", trace.TriggerHTTP, nil)
	}
	p.Train(tr)
	p.Tick(0, []trace.FuncCount{
		{Func: 0, Count: 1}, {Func: 1, Count: 1}, {Func: 2, Count: 1}, {Func: 3, Count: 1},
	})
	if p.LoadedCount() != 2 {
		t.Errorf("count = %d, want capacity 2", p.LoadedCount())
	}
	// The last two touched survive.
	if !p.Loaded(2) || !p.Loaded(3) {
		t.Error("most recently touched should survive")
	}
}

func TestLCSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	NewLCS(0)
}

func TestLCSName(t *testing.T) {
	if NewLCS(5).Name() != "LCS" {
		t.Error("name")
	}
}
