package baselines

import "repro/internal/sim"

// Sharded-execution support (sim.ShardedPolicy). A baseline may only opt in
// when its decisions for a function depend on nothing outside that
// function's app/user component: FixedKeepAlive and HybridFunction are
// purely per-function, HybridApplication aggregates per application (apps
// never cross shards), and Defuse mines dependencies within applications
// and keeps per-function histograms. FaaSCache and LCS deliberately do NOT
// implement the interface — their global capacity couples every function to
// every other, so per-shard instances with the same capacity would evict
// differently than one global instance.

// NewShard implements sim.ShardedPolicy.
func (p *FixedKeepAlive) NewShard() sim.Policy { return NewFixedKeepAlive(p.keepAlive) }

// NewShard implements sim.ShardedPolicy.
func (p *Hybrid) NewShard() sim.Policy {
	if p.appWise {
		return NewHybridApplication(p.cfg)
	}
	return NewHybridFunction(p.cfg)
}

// NewShard implements sim.ShardedPolicy.
func (p *Defuse) NewShard() sim.Policy { return NewDefuse(p.cfg) }
