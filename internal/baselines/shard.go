package baselines

import "repro/internal/sim"

// Sharded-execution support (sim.ShardedPolicy). A baseline may only opt in
// when its decisions for a function depend on nothing outside that
// function's app/user component: FixedKeepAlive and HybridFunction are
// purely per-function, HybridApplication aggregates per application (apps
// never cross shards), and Defuse mines dependencies within applications
// and keeps per-function histograms. FaaSCache and LCS do NOT implement the
// interface — their global capacity couples every function to every other,
// so INDEPENDENT per-shard instances would evict differently than one
// global instance. They shard through the capacity-arbitrated engine
// instead (sim.CapacityPolicy; see capacity.go).

// NewShard implements sim.ShardedPolicy.
func (p *FixedKeepAlive) NewShard() sim.Policy {
	s := NewFixedKeepAlive(p.keepAlive)
	s.mapAgenda = p.mapAgenda
	return s
}

// NewShard implements sim.ShardedPolicy.
func (p *Hybrid) NewShard() sim.Policy {
	if p.appWise {
		return NewHybridApplication(p.cfg)
	}
	return NewHybridFunction(p.cfg)
}

// NewShard implements sim.ShardedPolicy.
func (p *Defuse) NewShard() sim.Policy { return NewDefuse(p.cfg) }

// Shard-cache support (sim.ConfigHasher), for the same set of policies
// (the capacity-coupled baselines hash in capacity.go). Each hash covers
// the policy's complete behaviour-affecting configuration via
// sim.HashConfig, so adding a config field invalidates old cache entries
// automatically.

// ConfigHash implements sim.ConfigHasher. The engine choice is part of the
// hash even though both engines produce bit-identical results: cache entries
// should never silently vouch for an engine that did not produce them.
func (p *FixedKeepAlive) ConfigHash() uint64 {
	return sim.HashConfig(struct {
		KeepAlive int
		MapAgenda bool
	}{p.keepAlive, p.mapAgenda})
}

// ConfigHash implements sim.ConfigHasher. appWise is part of the hash even
// though HF and HA also differ by Name(): the key must stay correct if the
// names ever converge.
func (p *Hybrid) ConfigHash() uint64 {
	return sim.HashConfig(struct {
		Cfg     HybridConfig
		AppWise bool
	}{p.cfg, p.appWise})
}

// ConfigHash implements sim.ConfigHasher.
func (p *Defuse) ConfigHash() uint64 { return sim.HashConfig(p.cfg) }
