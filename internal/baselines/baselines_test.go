package baselines

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// newTestHist builds a 1-minute-bin histogram for unit tests.
func newTestHist(bins int) *stats.Histogram { return stats.NewHistogram(0, 1, bins) }

// Compile-time interface checks.
var (
	_ sim.Policy = (*FixedKeepAlive)(nil)
	_ sim.Policy = (*Hybrid)(nil)
	_ sim.Policy = (*Defuse)(nil)
	_ sim.Policy = (*FaaSCache)(nil)
	_ sim.Policy = (*LCS)(nil)
)

func TestLoadedSet(t *testing.T) {
	s := newLoadedSet(3)
	if s.has(0) || s.count != 0 {
		t.Fatal("fresh set not empty")
	}
	s.add(1)
	s.add(1) // idempotent
	if !s.has(1) || s.count != 1 {
		t.Errorf("after add: has=%v count=%d", s.has(1), s.count)
	}
	s.remove(1)
	s.remove(1) // idempotent
	if s.has(1) || s.count != 0 {
		t.Errorf("after remove: has=%v count=%d", s.has(1), s.count)
	}
}

func TestAgenda(t *testing.T) {
	a := newAgenda(2)
	fired := map[[2]int]int{}
	a.schedule(5, 0, 7)
	a.schedule(5, 1, 8)
	a.bump(1) // invalidates owner 1's action
	a.drain(5, func(owner, what int) { fired[[2]int{owner, what}]++ })
	if fired[[2]int{0, 7}] != 1 {
		t.Error("valid action did not fire")
	}
	if len(fired) != 1 {
		t.Errorf("stale action fired: %v", fired)
	}
	// Draining twice is a no-op.
	a.drain(5, func(owner, what int) { t.Error("double drain") })
	// Draining an empty slot is a no-op.
	a.drain(99, func(owner, what int) { t.Error("phantom drain") })
}
