package baselines

import (
	"fmt"
	"slices"

	"repro/internal/trace"
)

// LCS implements the "least-recently-used warm container" policy of Sethi
// et al. (ICDCN'23): every invoked function stays warm; when the warm pool
// exceeds its capacity, the least recently used container is recycled. The
// SPES paper cites LCS as related work; it is included here as an extra
// comparison point.
type LCS struct {
	capacity int

	set  *loadedSet
	last []int

	// lruHead/lruNext implement an intrusive doubly linked LRU list over
	// function IDs; -1 terminates.
	prev, next []int
	head, tail int
}

// NewLCS creates the policy with a warm-pool capacity in instances.
func NewLCS(capacity int) *LCS {
	if capacity <= 0 {
		panic(fmt.Sprintf("baselines: LCS capacity must be positive, got %d", capacity))
	}
	return &LCS{capacity: capacity}
}

// Name implements sim.Policy.
func (p *LCS) Name() string { return "LCS" }

// Train implements sim.Policy: the warm pool starts the simulation holding
// the most recently invoked training functions, up to capacity.
func (p *LCS) Train(training *trace.Trace) {
	n := training.NumFunctions()
	p.set = newLoadedSet(n)
	p.last = make([]int, n)
	p.prev = make([]int, n)
	p.next = make([]int, n)
	for i := 0; i < n; i++ {
		p.last[i] = -1
		p.prev[i] = -1
		p.next[i] = -1
	}
	p.head, p.tail = -1, -1

	type recency struct{ fid, last int }
	var seen []recency
	for fid, s := range training.Series {
		if last := s.LastSlot(); last >= 0 {
			seen = append(seen, recency{fid: fid, last: int(last) - training.Slots})
		}
	}
	slices.SortFunc(seen, func(a, b recency) int {
		if a.last != b.last {
			return a.last - b.last
		}
		return a.fid - b.fid // deterministic LRU order for same-slot ties
	})
	for _, r := range seen {
		p.last[r.fid] = r.last
		p.set.add(trace.FuncID(r.fid))
		p.touch(r.fid)
	}
	for p.set.count > p.capacity && p.head >= 0 {
		victim := p.head
		p.detach(victim)
		p.set.remove(trace.FuncID(victim))
	}
}

// detach removes f from the LRU list.
func (p *LCS) detach(f int) {
	if p.prev[f] >= 0 {
		p.next[p.prev[f]] = p.next[f]
	} else if p.head == f {
		p.head = p.next[f]
	}
	if p.next[f] >= 0 {
		p.prev[p.next[f]] = p.prev[f]
	} else if p.tail == f {
		p.tail = p.prev[f]
	}
	p.prev[f], p.next[f] = -1, -1
}

// touch moves f to the most-recently-used end (tail).
func (p *LCS) touch(f int) {
	p.detach(f)
	if p.tail < 0 {
		p.head, p.tail = f, f
		return
	}
	p.prev[f] = p.tail
	p.next[p.tail] = f
	p.tail = f
}

// Tick implements sim.Policy.
func (p *LCS) Tick(t int, invs []trace.FuncCount) {
	for _, fc := range invs {
		f := int(fc.Func)
		p.last[f] = t
		p.set.add(fc.Func)
		p.touch(f)
	}
	for p.set.count > p.capacity && p.head >= 0 {
		victim := p.head
		p.detach(victim)
		p.set.remove(trace.FuncID(victim))
	}
}

// NextWake implements sim.IdleSkipper. LCS has no timers: the warm pool only
// changes on invocations (an empty Tick cannot recycle, because Train and
// Tick both leave the pool at or under capacity), so an invocation-free span
// never needs a wake-up.
func (p *LCS) NextWake(after, limit int) (int, bool) { return -1, true }

// Loaded implements sim.Policy.
func (p *LCS) Loaded(f trace.FuncID) bool { return p.set.has(f) }

// LoadedCount implements sim.Policy.
func (p *LCS) LoadedCount() int { return p.set.count }

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (p *LCS) TakeLoadDeltas() ([]trace.FuncID, bool) { return p.set.takeDeltas() }
