package baselines

import (
	"fmt"
	"slices"

	"repro/internal/trace"
)

// lruState is the engine-agnostic recency core shared by the unsharded LCS
// driver and its capacity shard (capacity.go): last-invocation slots, the
// intrusive LRU list, and the loaded set. Like gdsfState it scores and
// admits but never decides WHEN to evict. An invariant both engines lean
// on: the list is always sorted by (last, FuncID) — Train touches in that
// sorted order and Tick touches each slot's invocations FuncID-ascending
// with equal last — so the head IS the minimum of that total order, and a
// cross-shard merge on the same key reproduces the global LRU order.
type lruState struct {
	set  *loadedSet
	last []int

	// prev/next implement an intrusive doubly linked LRU list over
	// function IDs; -1 terminates.
	prev, next []int
	head, tail int
}

func (s *lruState) init(n int) {
	s.set = newLoadedSet(n)
	s.last = make([]int, n)
	s.prev = make([]int, n)
	s.next = make([]int, n)
	for i := 0; i < n; i++ {
		s.last[i] = -1
		s.prev[i] = -1
		s.next[i] = -1
	}
	s.head, s.tail = -1, -1
}

// seed loads every function invoked during training, in LRU order (training
// recency rebased to negative slots, ties FuncID-ascending). Capacity is
// enforced by the caller.
func (s *lruState) seed(training *trace.Trace) {
	s.init(training.NumFunctions())
	type recency struct{ fid, last int }
	var seen []recency
	for fid, ser := range training.Series {
		if last := ser.LastSlot(); last >= 0 {
			seen = append(seen, recency{fid: fid, last: int(last) - training.Slots})
		}
	}
	slices.SortFunc(seen, func(a, b recency) int {
		if a.last != b.last {
			return a.last - b.last
		}
		return a.fid - b.fid // deterministic LRU order for same-slot ties
	})
	for _, r := range seen {
		s.last[r.fid] = r.last
		s.set.add(trace.FuncID(r.fid))
		s.touch(r.fid)
	}
}

// detach removes f from the LRU list.
func (s *lruState) detach(f int) {
	if s.prev[f] >= 0 {
		s.next[s.prev[f]] = s.next[f]
	} else if s.head == f {
		s.head = s.next[f]
	}
	if s.next[f] >= 0 {
		s.prev[s.next[f]] = s.prev[f]
	} else if s.tail == f {
		s.tail = s.prev[f]
	}
	s.prev[f], s.next[f] = -1, -1
}

// touch moves f to the most-recently-used end (tail).
func (s *lruState) touch(f int) {
	s.detach(f)
	if s.tail < 0 {
		s.head, s.tail = f, f
		return
	}
	s.prev[f] = s.tail
	s.next[s.tail] = f
	s.tail = f
}

// observe applies one slot's invocations: refresh recency and admit
// newcomers. No evictions.
func (s *lruState) observe(t int, invs []trace.FuncCount) {
	for _, fc := range invs {
		f := int(fc.Func)
		s.last[f] = t
		s.set.add(fc.Func)
		s.touch(f)
	}
}

// peekLRU returns the current eviction candidate — the list head, i.e. the
// minimum (last, FuncID) over the warm pool — without evicting.
func (s *lruState) peekLRU() (float64, trace.FuncID, bool) {
	if s.head < 0 {
		return 0, 0, false
	}
	return float64(s.last[s.head]), trace.FuncID(s.head), true
}

// evictLRU recycles the candidate peekLRU reported.
func (s *lruState) evictLRU() {
	victim := s.head
	s.detach(victim)
	s.set.remove(trace.FuncID(victim))
}

// LCS implements the "least-recently-used warm container" policy of Sethi
// et al. (ICDCN'23): every invoked function stays warm; when the warm pool
// exceeds its capacity, the least recently used container is recycled. The
// SPES paper cites LCS as related work; it is included here as an extra
// comparison point.
type LCS struct {
	capacity int
	lru      lruState
}

// NewLCS creates the policy with a warm-pool capacity in instances.
func NewLCS(capacity int) *LCS {
	if capacity <= 0 {
		panic(fmt.Sprintf("baselines: LCS capacity must be positive, got %d", capacity))
	}
	return &LCS{capacity: capacity}
}

// Name implements sim.Policy.
func (p *LCS) Name() string { return "LCS" }

// Train implements sim.Policy: the warm pool starts the simulation holding
// the most recently invoked training functions, up to capacity.
func (p *LCS) Train(training *trace.Trace) {
	p.lru.seed(training)
	p.enforce()
}

// Tick implements sim.Policy.
func (p *LCS) Tick(t int, invs []trace.FuncCount) {
	p.lru.observe(t, invs)
	p.enforce()
}

// enforce recycles least-recently-used containers until the pool fits.
func (p *LCS) enforce() {
	for p.lru.set.count > p.capacity && p.lru.head >= 0 {
		p.lru.evictLRU()
	}
}

// NextWake implements sim.IdleSkipper. LCS has no timers: the warm pool only
// changes on invocations (an empty Tick cannot recycle, because Train and
// Tick both leave the pool at or under capacity), so an invocation-free span
// never needs a wake-up.
func (p *LCS) NextWake(after, limit int) (int, bool) { return -1, true }

// Loaded implements sim.Policy.
func (p *LCS) Loaded(f trace.FuncID) bool { return p.lru.set.has(f) }

// LoadedCount implements sim.Policy.
func (p *LCS) LoadedCount() int { return p.lru.set.count }

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (p *LCS) TakeLoadDeltas() ([]trace.FuncID, bool) { return p.lru.set.takeDeltas() }
