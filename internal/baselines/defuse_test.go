package baselines

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// dependencyTrace builds a driver firing erratically and a follower firing
// 2 slots later, within one application, across train+sim halves.
func dependencyTrace(halfSlots int) *trace.Trace {
	full := trace.NewTrace(2 * halfSlots)
	var driver, follower []trace.Event
	cur := 50
	for i := 0; cur < 2*halfSlots-3; i++ {
		driver = append(driver, trace.Event{Slot: int32(cur), Count: 1})
		follower = append(follower, trace.Event{Slot: int32(cur + 2), Count: 1})
		cur += 211 + 83*(i%13)
	}
	full.AddFunction("driver", "app", "u", trace.TriggerHTTP, driver)
	full.AddFunction("follower", "app", "u", trace.TriggerOrchestration, follower)
	return full
}

func TestDefuseMinesDependencies(t *testing.T) {
	full := dependencyTrace(4 * 1440)
	train, simTr := full.Split(4 * 1440)
	p := NewDefuse(DefaultDefuseConfig())
	res, err := sim.Run(p, train, simTr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.successors[0]) == 0 {
		t.Fatal("no dependency mined from driver to follower")
	}
	// The follower is pre-warmed by its driver: no (or almost no) cold
	// starts despite erratic gaps.
	if res.PerFunc[1].ColdStarts > 1 {
		t.Errorf("follower cold starts = %d, want <= 1", res.PerFunc[1].ColdStarts)
	}
}

func TestDefuseFallbackKeepAlive(t *testing.T) {
	// An isolated function with irregular gaps: no dependencies, unusable
	// histogram -> 10-minute fallback.
	full := trace.NewTrace(4 * 1440)
	full.AddFunction("lonely", "app", "u", trace.TriggerHTTP, []trace.Event{
		{Slot: 10, Count: 1}, {Slot: 2000, Count: 1},
		{Slot: 2*1440 + 5, Count: 1}, {Slot: 2*1440 + 8, Count: 1}, {Slot: 2*1440 + 600, Count: 1},
	})
	train, simTr := full.Split(2 * 1440)
	p := NewDefuse(DefaultDefuseConfig())
	res, err := sim.Run(p, train, simTr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sim invocations at 5, 8, 600: 5 cold, 8 warm (gap 3 < 10), 600 cold.
	if res.PerFunc[0].ColdStarts != 2 {
		t.Errorf("cold starts = %d, want 2", res.PerFunc[0].ColdStarts)
	}
}

func TestDefuseName(t *testing.T) {
	if NewDefuse(DefaultDefuseConfig()).Name() != "Defuse" {
		t.Error("name")
	}
}
