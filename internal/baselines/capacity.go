package baselines

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Capacity-sharded execution support (sim.CapacityPolicy). FaaSCache and
// LCS cannot run as independent per-shard instances — their global memory
// budget couples every function to every other — but their SCORES (GDSF
// priority, LRU recency) depend only on each function's own history, so
// they shard as local scorers under the engine's global eviction arbiter:
// the shard forms below tick without evicting and expose their loaded sets
// in eviction order; the arbiter pops the globally lowest (score, FuncID)
// victim until the pool fits the budget, and broadcasts the GDSF clock
// ratchet back (sim.ClockCoupled). Bit-equivalence to the unsharded forms
// holds because those evict in exactly the same (score, FuncID) total
// order — see the cacheHeap tie-break and the lruState list invariant.

// Capacity implements sim.CapacityPolicy.
func (p *FaaSCache) Capacity() int { return p.capacity }

// NewCapacityShard implements sim.CapacityPolicy.
func (p *FaaSCache) NewCapacityShard() sim.CapacityShard { return &faasCacheShard{} }

// faasCacheShard is the arbiter-driven form of FaaSCache: same scoring
// state, no capacity of its own. Train seeds without enforcing (the engine
// runs one global arbitration pass over the trained shards before the
// simulation starts) and Tick only observes.
type faasCacheShard struct {
	gdsf gdsfState
}

func (s *faasCacheShard) Name() string { return "FaaSCache" }

// Train implements sim.Policy: seed scores and load every trained function;
// the arbiter enforces the global budget.
func (s *faasCacheShard) Train(training *trace.Trace) { s.gdsf.seed(training) }

// Tick implements sim.Policy: score updates and admissions only.
func (s *faasCacheShard) Tick(t int, invs []trace.FuncCount) { s.gdsf.observe(invs) }

// PeekVictim implements sim.CapacityShard.
func (s *faasCacheShard) PeekVictim() (float64, trace.FuncID, bool) { return s.gdsf.peekMin() }

// EvictVictim implements sim.CapacityShard. No local clock ratchet — the
// arbiter ratchets globally and broadcasts via SetClock.
func (s *faasCacheShard) EvictVictim() { s.gdsf.evictMin() }

// SetClock implements sim.ClockCoupled.
func (s *faasCacheShard) SetClock(clock float64) { s.gdsf.clock = clock }

// NextWake implements sim.IdleSkipper (see FaaSCache.NextWake).
func (s *faasCacheShard) NextWake(after, limit int) (int, bool) { return -1, true }

// Loaded implements sim.Policy.
func (s *faasCacheShard) Loaded(f trace.FuncID) bool { return s.gdsf.set.has(f) }

// LoadedCount implements sim.Policy.
func (s *faasCacheShard) LoadedCount() int { return s.gdsf.set.count }

// TakeLoadDeltas implements sim.LoadDeltaTracker. Arbiter evictions land in
// the same delta log as Tick admissions, so the driver's slot accounting
// sees them as one slot's flips.
func (s *faasCacheShard) TakeLoadDeltas() ([]trace.FuncID, bool) { return s.gdsf.set.takeDeltas() }

// Capacity implements sim.CapacityPolicy.
func (p *LCS) Capacity() int { return p.capacity }

// NewCapacityShard implements sim.CapacityPolicy.
func (p *LCS) NewCapacityShard() sim.CapacityShard { return &lcsShard{} }

// lcsShard is the arbiter-driven form of LCS: recency tracking only, the
// budget lives in the arbiter. LCS shares no clock, so it is not
// ClockCoupled.
type lcsShard struct {
	lru lruState
}

func (s *lcsShard) Name() string { return "LCS" }

// Train implements sim.Policy: seed recency and load every trained
// function; the arbiter enforces the global budget.
func (s *lcsShard) Train(training *trace.Trace) { s.lru.seed(training) }

// Tick implements sim.Policy: recency updates and admissions only.
func (s *lcsShard) Tick(t int, invs []trace.FuncCount) { s.lru.observe(t, invs) }

// PeekVictim implements sim.CapacityShard.
func (s *lcsShard) PeekVictim() (float64, trace.FuncID, bool) { return s.lru.peekLRU() }

// EvictVictim implements sim.CapacityShard.
func (s *lcsShard) EvictVictim() { s.lru.evictLRU() }

// NextWake implements sim.IdleSkipper (see LCS.NextWake).
func (s *lcsShard) NextWake(after, limit int) (int, bool) { return -1, true }

// Loaded implements sim.Policy.
func (s *lcsShard) Loaded(f trace.FuncID) bool { return s.lru.set.has(f) }

// LoadedCount implements sim.Policy.
func (s *lcsShard) LoadedCount() int { return s.lru.set.count }

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (s *lcsShard) TakeLoadDeltas() ([]trace.FuncID, bool) { return s.lru.set.takeDeltas() }

// Shard-cache config hashing (sim.ConfigHasher). Capacity policies hash
// like every other policy so sweep tooling can fingerprint their configs —
// even though their SHARD outcomes are never cached (the capacity engine
// refuses an attached ShardCache; see sim.CapacityCacheError). The Engine
// string names the deterministic eviction-order rule, mirroring the
// engine-choice-in-hash rule of shard.go: this PR changed FaaSCache's
// eviction order among equal priorities (FuncID tie-break), and any entry
// or fingerprint minted under a different order rule must never vouch for
// this one.

// ConfigHash implements sim.ConfigHasher.
func (p *FaaSCache) ConfigHash() uint64 {
	return sim.HashConfig(struct {
		Capacity int
		Engine   string
	}{p.capacity, "gdsf/fid-tiebreak"})
}

// ConfigHash implements sim.ConfigHasher.
func (p *LCS) ConfigHash() uint64 {
	return sim.HashConfig(struct {
		Capacity int
		Engine   string
	}{p.capacity, "lru/fid-tiebreak"})
}
