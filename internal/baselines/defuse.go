package baselines

import (
	"slices"

	"repro/internal/classify"
	"repro/internal/sched"
	"repro/internal/trace"
)

// DefuseConfig parameterizes the Defuse policy (Shen et al., ICDCS'21).
// Defuse mines inter-function dependencies from invocation histories —
// strong dependencies from frequent co-occurrence episodes, weak ones from
// positive pointwise mutual information — and pre-warms a function when its
// predecessors fire. Functions without usable dependencies or histograms
// fall back to a fixed keep-alive (the original reports falling back for
// over 32% of functions).
type DefuseConfig struct {
	MaxLag        int32   // dependency window (slots)
	MinSupport    int     // minimum co-occurrence count for a dependency
	MinConfidence float64 // minimum P(target | predecessor fired within lag)
	MaxPredFanout int     // cap on mined predecessors per function

	Hist         HybridConfig // per-function histogram keep-alive settings
	FallbackKeep int          // fixed keep-alive fallback (10 min)
	PrewarmHold  int32        // how long a dependency pre-load stays resident

	// MapAgenda selects the retained map-backed agenda instead of the
	// timing wheel — the reference engine for the equivalence suite,
	// mirroring core.Config.DenseScan. Results are bit-identical either way.
	MapAgenda bool
}

// DefaultDefuseConfig returns settings following the original paper.
func DefaultDefuseConfig() DefuseConfig {
	return DefuseConfig{
		MaxLag:        10,
		MinSupport:    3,
		MinConfidence: 0.5,
		MaxPredFanout: 5,
		Hist: func() HybridConfig {
			// Defuse's histogram gate is stricter than Hybrid's: the SPES
			// paper reports it falling back to fixed keep-alive for more
			// than 32% of functions.
			h := DefaultHybridConfig()
			h.MinObservations = 10
			return h
		}(),
		FallbackKeep: 10,
		PrewarmHold:  12,
	}
}

// spanSlots bounds how far ahead Defuse ever schedules: the histogram span
// plus the dependency windows.
func (cfg DefuseConfig) spanSlots() int {
	span := cfg.Hist.spanSlots()
	for _, s := range []int{cfg.FallbackKeep + 2, int(cfg.PrewarmHold) + 2, int(cfg.MaxLag) + 2} {
		if s > span {
			span = s
		}
	}
	return span
}

// Defuse implements sim.Policy.
type Defuse struct {
	cfg DefuseConfig

	set   *loadedSet
	wheel *sched.Agenda // event engine (default)
	ref   *agenda       // reference engine (cfg.MapAgenda)
	last  []int

	units []hybridUnit // per-function histograms (function granularity)

	// successors maps a predecessor to the functions it pre-warms.
	successors map[trace.FuncID][]trace.FuncID
	hasDeps    []bool
}

// NewDefuse creates the policy.
func NewDefuse(cfg DefuseConfig) *Defuse { return &Defuse{cfg: cfg} }

// Name implements sim.Policy.
func (p *Defuse) Name() string { return "Defuse" }

// Train mines the dependency graph and charges per-function histograms.
func (p *Defuse) Train(training *trace.Trace) {
	n := training.NumFunctions()
	p.set = newLoadedSet(n)
	if p.cfg.MapAgenda {
		p.ref = newAgenda(n)
	} else {
		p.wheel = sched.NewAgenda(n, p.cfg.spanSlots())
	}
	p.last = make([]int, n)
	p.hasDeps = make([]bool, n)
	p.successors = make(map[trace.FuncID][]trace.FuncID)
	for i := range p.last {
		p.last[i] = -1
	}

	// Histograms at function granularity (allocated on first inter-arrival),
	// with end-of-training carryover.
	p.units = make([]hybridUnit, n)
	invoked := make([][]int32, n)
	for fid := 0; fid < n; fid++ {
		p.units[fid] = hybridUnit{last: -1}
		for _, e := range training.Series[fid] {
			invoked[fid] = append(invoked[fid], e.Slot)
		}
		unit := &p.units[fid]
		for j := 1; j < len(invoked[fid]); j++ {
			unit.addIAT(float64(invoked[fid][j]-invoked[fid][j-1]), p.cfg.Hist.RangeMins)
		}
		unit.windows(p.cfg.Hist)
		if len(invoked[fid]) == 0 {
			continue
		}
		rebased := int(invoked[fid][len(invoked[fid])-1]) - training.Slots
		unit.last = rebased
		p.last[fid] = rebased
		keep := p.cfg.FallbackKeep
		if unit.usable {
			keep = unit.prewarm + unit.keepalive
		}
		if end := rebased + keep; end > 0 {
			p.set.add(trace.FuncID(fid))
			p.schedule(-1, end, fid, actUnload)
		}
	}

	// Dependency mining: within each application, accept predecessor ->
	// target edges whose windowed confidence and support clear the bars.
	// (The original mines frequent episodes across the whole trace; apps
	// bound the candidate set exactly as its evaluation does.)
	for _, fns := range training.AppFunctions() {
		for _, target := range fns {
			if len(invoked[target]) == 0 {
				continue
			}
			type cand struct {
				pred trace.FuncID
				conf float64
			}
			var accepted []cand
			for _, pred := range fns {
				if pred == target || len(invoked[pred]) == 0 {
					continue
				}
				// Association-rule confidence: P(target follows within the
				// window | pred fired), with absolute support. Normalizing
				// by the predecessor's activity keeps busy functions from
				// linking to everything in their application.
				conf := classify.WindowedFollowRate(invoked[pred], invoked[target], p.cfg.MaxLag)
				support := int(conf * float64(len(invoked[pred])))
				if conf >= p.cfg.MinConfidence && support >= p.cfg.MinSupport {
					accepted = append(accepted, cand{pred: pred, conf: conf})
				}
			}
			slices.SortFunc(accepted, func(a, b cand) int {
				if a.conf != b.conf {
					if a.conf > b.conf {
						return -1
					}
					return 1
				}
				return int(a.pred) - int(b.pred)
			})
			if len(accepted) > p.cfg.MaxPredFanout {
				accepted = accepted[:p.cfg.MaxPredFanout]
			}
			for _, c := range accepted {
				p.successors[c.pred] = append(p.successors[c.pred], target)
				p.hasDeps[target] = true
			}
		}
	}
}

// Tick implements sim.Policy.
func (p *Defuse) Tick(t int, invs []trace.FuncCount) {
	for _, fc := range invs {
		f := int(fc.Func)
		unit := &p.units[f]
		if unit.last >= 0 {
			unit.addIAT(float64(t-unit.last), p.cfg.Hist.RangeMins)
		}
		unit.last = t
		if unit.dirty {
			unit.windows(p.cfg.Hist)
		}
		p.last[f] = t
		p.bump(f)
		p.set.add(fc.Func)
		// Keep-alive horizon: histogram tail when usable, fallback fixed
		// keep-alive otherwise. Dependency-covered functions rely on their
		// predecessors and release memory sooner.
		keep := p.cfg.FallbackKeep
		if unit.usable {
			keep = unit.prewarm + unit.keepalive
		} else if p.hasDeps[f] {
			keep = int(p.cfg.MaxLag)
		}
		if keep < 1 {
			keep = 1
		}
		p.schedule(t, t+keep, f, actUnload)
	}

	// Dependency pre-warming: predecessors that fired pre-load successors.
	for _, fc := range invs {
		for _, succ := range p.successors[fc.Func] {
			if p.set.has(succ) {
				continue
			}
			p.set.add(succ)
			p.bump(int(succ))
			p.schedule(t, t+int(p.cfg.PrewarmHold), int(succ), actUnload)
		}
	}

	p.drainAt(t)
}

func (p *Defuse) bump(f int) {
	if p.ref != nil {
		p.ref.bump(f)
		return
	}
	p.wheel.Bump(f)
}

func (p *Defuse) schedule(current, slot, f, what int) {
	if p.ref != nil {
		p.ref.schedule(slot, f, what)
		return
	}
	p.wheel.Schedule(current, slot, f, what)
}

func (p *Defuse) drainAt(t int) {
	apply := func(owner, what int) {
		if what == actUnload {
			p.set.remove(trace.FuncID(owner))
		}
	}
	if p.ref != nil {
		p.ref.drain(t, apply)
		return
	}
	p.wheel.Drain(t, apply)
}

// NextWake implements sim.IdleSkipper: the earliest slot in (after, limit]
// holding a scheduled action, -1 when there is none. The map-backed
// reference engine reports ok=false so it stays on the per-slot path.
func (p *Defuse) NextWake(after, limit int) (int, bool) {
	if p.wheel == nil {
		return 0, false
	}
	return p.wheel.Next(after, limit), true
}

// Loaded implements sim.Policy.
func (p *Defuse) Loaded(f trace.FuncID) bool { return p.set.has(f) }

// LoadedCount implements sim.Policy.
func (p *Defuse) LoadedCount() int { return p.set.count }

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (p *Defuse) TakeLoadDeltas() ([]trace.FuncID, bool) { return p.set.takeDeltas() }
