package baselines

import (
	"sort"

	"repro/internal/classify"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefuseConfig parameterizes the Defuse policy (Shen et al., ICDCS'21).
// Defuse mines inter-function dependencies from invocation histories —
// strong dependencies from frequent co-occurrence episodes, weak ones from
// positive pointwise mutual information — and pre-warms a function when its
// predecessors fire. Functions without usable dependencies or histograms
// fall back to a fixed keep-alive (the original reports falling back for
// over 32% of functions).
type DefuseConfig struct {
	MaxLag        int32   // dependency window (slots)
	MinSupport    int     // minimum co-occurrence count for a dependency
	MinConfidence float64 // minimum P(target | predecessor fired within lag)
	MaxPredFanout int     // cap on mined predecessors per function

	Hist         HybridConfig // per-function histogram keep-alive settings
	FallbackKeep int          // fixed keep-alive fallback (10 min)
	PrewarmHold  int32        // how long a dependency pre-load stays resident
}

// DefaultDefuseConfig returns settings following the original paper.
func DefaultDefuseConfig() DefuseConfig {
	return DefuseConfig{
		MaxLag:        10,
		MinSupport:    3,
		MinConfidence: 0.5,
		MaxPredFanout: 5,
		Hist: func() HybridConfig {
			// Defuse's histogram gate is stricter than Hybrid's: the SPES
			// paper reports it falling back to fixed keep-alive for more
			// than 32% of functions.
			h := DefaultHybridConfig()
			h.MinObservations = 10
			return h
		}(),
		FallbackKeep: 10,
		PrewarmHold:  12,
	}
}

// Defuse implements sim.Policy.
type Defuse struct {
	cfg DefuseConfig

	set    *loadedSet
	agenda *agenda
	last   []int

	units []hybridUnit // per-function histograms (function granularity)

	// successors maps a predecessor to the functions it pre-warms.
	successors map[trace.FuncID][]trace.FuncID
	hasDeps    []bool
}

// NewDefuse creates the policy.
func NewDefuse(cfg DefuseConfig) *Defuse { return &Defuse{cfg: cfg} }

// Name implements sim.Policy.
func (p *Defuse) Name() string { return "Defuse" }

// Train mines the dependency graph and charges per-function histograms.
func (p *Defuse) Train(training *trace.Trace) {
	n := training.NumFunctions()
	p.set = newLoadedSet(n)
	p.agenda = newAgenda(n)
	p.last = make([]int, n)
	p.hasDeps = make([]bool, n)
	p.successors = make(map[trace.FuncID][]trace.FuncID)
	for i := range p.last {
		p.last[i] = -1
	}

	// Histograms at function granularity, with end-of-training carryover.
	p.units = make([]hybridUnit, n)
	invoked := make([][]int32, n)
	for fid := 0; fid < n; fid++ {
		p.units[fid] = hybridUnit{hist: stats.NewHistogram(0, 1, p.cfg.Hist.RangeMins), last: -1}
		for _, e := range training.Series[fid] {
			invoked[fid] = append(invoked[fid], e.Slot)
		}
		for j := 1; j < len(invoked[fid]); j++ {
			p.units[fid].hist.Add(float64(invoked[fid][j] - invoked[fid][j-1]))
		}
		unit := &p.units[fid]
		unit.windows(p.cfg.Hist)
		if len(invoked[fid]) == 0 {
			continue
		}
		rebased := int(invoked[fid][len(invoked[fid])-1]) - training.Slots
		unit.last = rebased
		p.last[fid] = rebased
		keep := p.cfg.FallbackKeep
		if unit.usable {
			keep = unit.prewarm + unit.keepalive
		}
		if end := rebased + keep; end > 0 {
			p.set.add(trace.FuncID(fid))
			p.agenda.schedule(end, fid, actUnload)
		}
	}

	// Dependency mining: within each application, accept predecessor ->
	// target edges whose windowed confidence and support clear the bars.
	// (The original mines frequent episodes across the whole trace; apps
	// bound the candidate set exactly as its evaluation does.)
	for _, fns := range training.AppFunctions() {
		for _, target := range fns {
			if len(invoked[target]) == 0 {
				continue
			}
			type cand struct {
				pred trace.FuncID
				conf float64
			}
			var accepted []cand
			for _, pred := range fns {
				if pred == target || len(invoked[pred]) == 0 {
					continue
				}
				// Association-rule confidence: P(target follows within the
				// window | pred fired), with absolute support. Normalizing
				// by the predecessor's activity keeps busy functions from
				// linking to everything in their application.
				conf := classify.WindowedFollowRate(invoked[pred], invoked[target], p.cfg.MaxLag)
				support := int(conf * float64(len(invoked[pred])))
				if conf >= p.cfg.MinConfidence && support >= p.cfg.MinSupport {
					accepted = append(accepted, cand{pred: pred, conf: conf})
				}
			}
			sort.Slice(accepted, func(i, j int) bool {
				if accepted[i].conf != accepted[j].conf {
					return accepted[i].conf > accepted[j].conf
				}
				return accepted[i].pred < accepted[j].pred
			})
			if len(accepted) > p.cfg.MaxPredFanout {
				accepted = accepted[:p.cfg.MaxPredFanout]
			}
			for _, c := range accepted {
				p.successors[c.pred] = append(p.successors[c.pred], target)
				p.hasDeps[target] = true
			}
		}
	}
}

// Tick implements sim.Policy.
func (p *Defuse) Tick(t int, invs []trace.FuncCount) {
	for _, fc := range invs {
		f := int(fc.Func)
		unit := &p.units[f]
		if unit.last >= 0 {
			unit.hist.Add(float64(t - unit.last))
			unit.dirty = true
		}
		unit.last = t
		if unit.dirty {
			unit.windows(p.cfg.Hist)
		}
		p.last[f] = t
		p.agenda.bump(f)
		p.set.add(fc.Func)
		// Keep-alive horizon: histogram tail when usable, fallback fixed
		// keep-alive otherwise. Dependency-covered functions rely on their
		// predecessors and release memory sooner.
		keep := p.cfg.FallbackKeep
		if unit.usable {
			keep = unit.prewarm + unit.keepalive
		} else if p.hasDeps[f] {
			keep = int(p.cfg.MaxLag)
		}
		if keep < 1 {
			keep = 1
		}
		p.agenda.schedule(t+keep, f, actUnload)
	}

	// Dependency pre-warming: predecessors that fired pre-load successors.
	for _, fc := range invs {
		for _, succ := range p.successors[fc.Func] {
			if p.set.has(succ) {
				continue
			}
			p.set.add(succ)
			p.agenda.bump(int(succ))
			p.agenda.schedule(t+int(p.cfg.PrewarmHold), int(succ), actUnload)
		}
	}

	p.agenda.drain(t, func(owner, what int) {
		if what == actUnload {
			p.set.remove(trace.FuncID(owner))
		}
	})
}

// Loaded implements sim.Policy.
func (p *Defuse) Loaded(f trace.FuncID) bool { return p.set.has(f) }

// LoadedCount implements sim.Policy.
func (p *Defuse) LoadedCount() int { return p.set.count }

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (p *Defuse) TakeLoadDeltas() ([]trace.FuncID, bool) { return p.set.takeDeltas() }
