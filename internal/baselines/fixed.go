package baselines

import (
	"fmt"

	"repro/internal/trace"
)

// FixedKeepAlive keeps every function loaded for a fixed number of minutes
// after its last invocation — the classic OpenWhisk-style policy the paper
// runs with a 10-minute window.
type FixedKeepAlive struct {
	keepAlive int
	name      string

	set    *loadedSet
	agenda *agenda
	last   []int // last invocation slot per function, -1 when never
}

// NewFixedKeepAlive creates the policy; keepAlive is in slots (minutes) and
// must be positive.
func NewFixedKeepAlive(keepAlive int) *FixedKeepAlive {
	if keepAlive <= 0 {
		panic(fmt.Sprintf("baselines: keep-alive must be positive, got %d", keepAlive))
	}
	return &FixedKeepAlive{
		keepAlive: keepAlive,
		name:      fmt.Sprintf("Fixed-%dmin", keepAlive),
	}
}

// Name implements sim.Policy.
func (p *FixedKeepAlive) Name() string { return p.name }

// Train implements sim.Policy. The fixed policy has no model to fit, but it
// carries its end-of-training state into the simulation: a function invoked
// within the keep-alive window before the boundary starts the simulation
// loaded, exactly as if the policy had been running all along.
func (p *FixedKeepAlive) Train(training *trace.Trace) {
	p.init(training.NumFunctions())
	for fid, s := range training.Series {
		last := s.LastSlot()
		if last < 0 {
			continue
		}
		rebased := int(last) - training.Slots // negative: slots before sim start
		p.last[fid] = rebased
		if expire := rebased + p.keepAlive; expire > 0 {
			p.set.add(trace.FuncID(fid))
			p.agenda.schedule(expire, fid, 0)
		}
	}
}

func (p *FixedKeepAlive) init(n int) {
	p.set = newLoadedSet(n)
	p.agenda = newAgenda(n)
	p.last = make([]int, n)
	for i := range p.last {
		p.last[i] = -1
	}
}

// Tick implements sim.Policy.
func (p *FixedKeepAlive) Tick(t int, invs []trace.FuncCount) {
	if p.set == nil {
		// Tolerate missing Train for ad-hoc use; grow on demand.
		max := 0
		for _, fc := range invs {
			if int(fc.Func) >= max {
				max = int(fc.Func) + 1
			}
		}
		p.init(max)
	}
	for _, fc := range invs {
		f := int(fc.Func)
		p.last[f] = t
		p.agenda.bump(f)
		p.agenda.schedule(t+p.keepAlive, f, 0)
		p.set.add(fc.Func)
	}
	p.agenda.drain(t, func(owner, _ int) {
		p.set.remove(trace.FuncID(owner))
	})
}

// Loaded implements sim.Policy.
func (p *FixedKeepAlive) Loaded(f trace.FuncID) bool { return p.set.has(f) }

// LoadedCount implements sim.Policy.
func (p *FixedKeepAlive) LoadedCount() int { return p.set.count }

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (p *FixedKeepAlive) TakeLoadDeltas() ([]trace.FuncID, bool) { return p.set.takeDeltas() }
