package baselines

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/trace"
)

// FixedKeepAlive keeps every function loaded for a fixed number of minutes
// after its last invocation — the classic OpenWhisk-style policy the paper
// runs with a 10-minute window.
//
// Expiries run on a shared timing wheel (sched.Agenda) by default; the
// map-backed reference engine survives behind NewFixedKeepAliveReference for
// the equivalence suite.
type FixedKeepAlive struct {
	keepAlive int
	name      string
	mapAgenda bool // reference engine: map-backed agenda instead of the wheel

	set   *loadedSet
	wheel *sched.Agenda // event engine (default)
	ref   *agenda       // reference engine (mapAgenda)
	last  []int         // last invocation slot per function, -1 when never
}

// NewFixedKeepAlive creates the policy; keepAlive is in slots (minutes) and
// must be positive.
func NewFixedKeepAlive(keepAlive int) *FixedKeepAlive {
	if keepAlive <= 0 {
		panic(fmt.Sprintf("baselines: keep-alive must be positive, got %d", keepAlive))
	}
	return &FixedKeepAlive{
		keepAlive: keepAlive,
		name:      fmt.Sprintf("Fixed-%dmin", keepAlive),
	}
}

// NewFixedKeepAliveReference creates the policy on the retained map-backed
// agenda — the reference engine the equivalence tests run the wheel engine
// against (the FixedKeepAlive counterpart of core.Config.DenseScan).
func NewFixedKeepAliveReference(keepAlive int) *FixedKeepAlive {
	p := NewFixedKeepAlive(keepAlive)
	p.mapAgenda = true
	return p
}

// Name implements sim.Policy.
func (p *FixedKeepAlive) Name() string { return p.name }

// Train implements sim.Policy. The fixed policy has no model to fit, but it
// carries its end-of-training state into the simulation: a function invoked
// within the keep-alive window before the boundary starts the simulation
// loaded, exactly as if the policy had been running all along.
func (p *FixedKeepAlive) Train(training *trace.Trace) {
	p.init(training.NumFunctions())
	for fid, s := range training.Series {
		last := s.LastSlot()
		if last < 0 {
			continue
		}
		rebased := int(last) - training.Slots // negative: slots before sim start
		p.last[fid] = rebased
		if expire := rebased + p.keepAlive; expire > 0 {
			p.set.add(trace.FuncID(fid))
			p.schedule(-1, expire, fid)
		}
	}
}

func (p *FixedKeepAlive) init(n int) {
	p.set = newLoadedSet(n)
	if p.mapAgenda {
		p.ref = newAgenda(n)
	} else {
		p.wheel = sched.NewAgenda(n, p.keepAlive+2)
	}
	p.last = make([]int, n)
	for i := range p.last {
		p.last[i] = -1
	}
}

// grow extends the per-function state to cover FuncIDs up to n-1. Tick grows
// on demand when Train was skipped, so an ad-hoc driver whose later slots
// introduce larger FuncIDs no longer indexes out of range (the first slot
// used to fix the size for good).
func (p *FixedKeepAlive) grow(n int) {
	p.set.grow(n)
	if p.mapAgenda {
		p.ref.grow(n)
	} else {
		p.wheel.Grow(n)
	}
	for len(p.last) < n {
		p.last = append(p.last, -1)
	}
}

// Tick implements sim.Policy.
func (p *FixedKeepAlive) Tick(t int, invs []trace.FuncCount) {
	if p.set == nil {
		p.init(0) // tolerate missing Train; grow on demand below
	}
	for _, fc := range invs {
		f := int(fc.Func)
		if f >= len(p.last) {
			p.grow(f + 1)
		}
		p.last[f] = t
		p.bump(f)
		p.schedule(t, t+p.keepAlive, f)
		p.set.add(fc.Func)
	}
	if p.ref != nil {
		p.ref.drain(t, func(owner, _ int) {
			p.set.remove(trace.FuncID(owner))
		})
		return
	}
	p.wheel.Drain(t, func(owner, _ int) {
		p.set.remove(trace.FuncID(owner))
	})
}

func (p *FixedKeepAlive) bump(f int) {
	if p.ref != nil {
		p.ref.bump(f)
		return
	}
	p.wheel.Bump(f)
}

func (p *FixedKeepAlive) schedule(current, slot, f int) {
	if p.ref != nil {
		p.ref.schedule(slot, f, 0)
		return
	}
	p.wheel.Schedule(current, slot, f, 0)
}

// NextWake implements sim.IdleSkipper: the earliest slot in (after, limit]
// holding a scheduled expiry, -1 when there is none. The map-backed
// reference engine reports ok=false so it stays on the per-slot path.
func (p *FixedKeepAlive) NextWake(after, limit int) (int, bool) {
	if p.wheel == nil {
		return 0, false
	}
	return p.wheel.Next(after, limit), true
}

// Loaded implements sim.Policy.
func (p *FixedKeepAlive) Loaded(f trace.FuncID) bool { return p.set.has(f) }

// LoadedCount implements sim.Policy.
func (p *FixedKeepAlive) LoadedCount() int { return p.set.count }

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (p *FixedKeepAlive) TakeLoadDeltas() ([]trace.FuncID, bool) { return p.set.takeDeltas() }
