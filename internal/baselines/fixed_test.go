package baselines

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func mkTrace(slots int, invocations map[int][]int32) (*trace.Trace, *trace.Trace) {
	full := trace.NewTrace(slots * 2)
	ids := make([]int, 0, len(invocations))
	for f := range invocations {
		ids = append(ids, f)
	}
	// Deterministic order by id.
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, f := range ids {
		var events []trace.Event
		for _, s := range invocations[f] {
			// Offset into the simulation half.
			events = append(events, trace.Event{Slot: int32(slots) + s, Count: 1})
		}
		full.AddFunction("f", "app", "u", trace.TriggerHTTP, events)
	}
	return full.Split(slots)
}

func TestFixedKeepAliveBehaviour(t *testing.T) {
	// One function invoked at slots 0 and 8 with keep-alive 5: the second
	// invocation is cold (gap 8 > 5); then at 12 (gap 4) warm.
	train, simTr := mkTrace(100, map[int][]int32{0: {0, 8, 12}})
	p := NewFixedKeepAlive(5)
	res, err := sim.Run(p, train, simTr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerFunc[0].ColdStarts != 2 {
		t.Errorf("cold starts = %d, want 2 (slot 0 and slot 8)", res.PerFunc[0].ColdStarts)
	}
	// Waste: slots 1-4 (evicted at 5), 9-11, 13-16 -> 4+3+4 = 11.
	if res.PerFunc[0].WMTMinutes != 11 {
		t.Errorf("WMT = %d, want 11", res.PerFunc[0].WMTMinutes)
	}
}

func TestFixedKeepAliveName(t *testing.T) {
	if got := NewFixedKeepAlive(10).Name(); got != "Fixed-10min" {
		t.Errorf("Name = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero keep-alive should panic")
		}
	}()
	NewFixedKeepAlive(0)
}

func TestFixedKeepAliveWithoutTrain(t *testing.T) {
	p := NewFixedKeepAlive(3)
	p.Tick(0, []trace.FuncCount{{Func: 2, Count: 1}})
	if !p.Loaded(2) || p.LoadedCount() != 1 {
		t.Error("ad-hoc use without Train failed")
	}
	p.Tick(1, nil)
	p.Tick(2, nil)
	p.Tick(3, nil)
	if p.Loaded(2) {
		t.Error("function should be evicted after keep-alive")
	}
}

// TestFixedKeepAliveUntrainedGrowth is the regression test for the lazy-init
// bug: driving FixedKeepAlive without Train used to size its per-function
// state from the first slot's largest FuncID for good, so a later slot
// introducing a larger FuncID indexed out of range. Growth is now on demand,
// on both engines.
func TestFixedKeepAliveUntrainedGrowth(t *testing.T) {
	for _, mk := range []struct {
		name string
		p    *FixedKeepAlive
	}{
		{"wheel", NewFixedKeepAlive(3)},
		{"reference", NewFixedKeepAliveReference(3)},
	} {
		p := mk.p
		p.Tick(0, []trace.FuncCount{{Func: 1, Count: 1}})
		// Larger FuncID in a later slot: used to panic with index out of range.
		p.Tick(1, []trace.FuncCount{{Func: 5, Count: 1}})
		p.Tick(2, nil)
		p.Tick(3, nil)

		if !p.Loaded(5) {
			t.Fatalf("%s: f5 should still be within its keep-alive window", mk.name)
		}
		if p.Loaded(1) {
			t.Fatalf("%s: f1 expired at slot 3 and should be unloaded", mk.name)
		}
		p.Tick(4, nil)
		if p.Loaded(5) || p.LoadedCount() != 0 {
			t.Fatalf("%s: f5 should expire at slot 4, loaded=%d", mk.name, p.LoadedCount())
		}
	}
}

// TestFixedKeepAliveUntrainedMatchesTrained pins on-demand growth to the
// usual pre-sized behaviour on the same arrival sequence.
func TestFixedKeepAliveUntrainedMatchesTrained(t *testing.T) {
	arrivals := [][]trace.FuncCount{
		{{Func: 0, Count: 1}},
		{{Func: 7, Count: 2}},
		nil,
		{{Func: 3, Count: 1}, {Func: 7, Count: 1}},
		nil,
		nil,
		nil,
	}
	grown := NewFixedKeepAlive(2)
	sized := NewFixedKeepAlive(2)
	sized.init(8)
	for t0, invs := range arrivals {
		grown.Tick(t0, invs)
		sized.Tick(t0, invs)
		if grown.LoadedCount() != sized.LoadedCount() {
			t.Fatalf("slot %d: LoadedCount grown=%d sized=%d",
				t0, grown.LoadedCount(), sized.LoadedCount())
		}
	}
	for f := trace.FuncID(0); f < 8; f++ {
		if grown.Loaded(f) != sized.Loaded(f) {
			t.Fatalf("f%d: grown=%v sized=%v", f, grown.Loaded(f), sized.Loaded(f))
		}
	}
}

func TestFixedKeepAliveReinvocationExtends(t *testing.T) {
	train, simTr := mkTrace(100, map[int][]int32{0: {0, 2, 4, 6, 8}})
	p := NewFixedKeepAlive(3)
	res, err := sim.Run(p, train, simTr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Gaps of 2 < 3: only the first invocation is cold.
	if res.PerFunc[0].ColdStarts != 1 {
		t.Errorf("cold starts = %d, want 1", res.PerFunc[0].ColdStarts)
	}
}
