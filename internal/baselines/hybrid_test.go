package baselines

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// periodicTrace returns train+sim halves with one function invoked every
// `period` slots throughout both halves.
func periodicTrace(halfSlots, period int) (*trace.Trace, *trace.Trace) {
	full := trace.NewTrace(2 * halfSlots)
	var events []trace.Event
	for s := 0; s < 2*halfSlots; s += period {
		events = append(events, trace.Event{Slot: int32(s), Count: 1})
	}
	full.AddFunction("f", "app", "u", trace.TriggerTimer, events)
	return full.Split(halfSlots)
}

func TestHybridFunctionLearnsPeriodicPattern(t *testing.T) {
	train, simTr := periodicTrace(4*1440, 60)
	p := NewHybridFunction(DefaultHybridConfig())
	res, err := sim.Run(p, train, simTr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The 60-minute IAT histogram is sharply peaked: prewarm ~54 (P5=60
	// shrunk 10%), keep-alive through ~66. Every invocation lands warm.
	if res.PerFunc[0].ColdStarts > 1 {
		t.Errorf("cold starts = %d, want <= 1", res.PerFunc[0].ColdStarts)
	}
	// Memory footprint must be far below keep-everything (window ~12 of
	// every 60 slots).
	if res.TotalMemory > int64(simTr.Slots)/2 {
		t.Errorf("memory = %d, want well below %d", res.TotalMemory, simTr.Slots)
	}
}

func TestHybridFallbackForIrregular(t *testing.T) {
	// A function with too few invocations: fallback keep-alive (240 min).
	full := trace.NewTrace(4 * 1440)
	full.AddFunction("f", "app", "u", trace.TriggerHTTP, []trace.Event{
		{Slot: 100, Count: 1}, {Slot: 2*1440 + 100, Count: 1}, {Slot: 2*1440 + 500, Count: 1},
	})
	train, simTr := full.Split(2 * 1440)
	p := NewHybridFunction(DefaultHybridConfig())
	res, err := sim.Run(p, train, simTr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Invocations at sim slots 100 and 500: gap 400 > 240 fallback, so both
	// are cold; waste is bounded by two fallback windows.
	if res.PerFunc[0].ColdStarts != 2 {
		t.Errorf("cold starts = %d, want 2", res.PerFunc[0].ColdStarts)
	}
	if res.PerFunc[0].WMTMinutes == 0 || res.PerFunc[0].WMTMinutes > 2*240 {
		t.Errorf("WMT = %d, want within two fallback windows", res.PerFunc[0].WMTMinutes)
	}
}

func TestHybridApplicationGroupsFunctions(t *testing.T) {
	// Two functions in one app, invoked alternately every 30 slots: at app
	// granularity the aggregate IAT is 30, and both functions ride the same
	// windows — so each function is warm even though its own IAT is 60.
	full := trace.NewTrace(4 * 1440)
	var a, b []trace.Event
	for s := 0; s < 4*1440; s += 60 {
		a = append(a, trace.Event{Slot: int32(s), Count: 1})
		if s+30 < 4*1440 {
			b = append(b, trace.Event{Slot: int32(s + 30), Count: 1})
		}
	}
	full.AddFunction("fa", "app", "u", trace.TriggerHTTP, a)
	full.AddFunction("fb", "app", "u", trace.TriggerHTTP, b)
	train, simTr := full.Split(2 * 1440)

	p := NewHybridApplication(DefaultHybridConfig())
	res, err := sim.Run(p, train, simTr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold := res.PerFunc[0].ColdStarts + res.PerFunc[1].ColdStarts
	if cold > 2 {
		t.Errorf("app-wise cold starts = %d, want <= 2", cold)
	}
	// Loading is app-wise: whenever fa is loaded so is fb, so memory is
	// charged for both.
	if res.TotalMemory%2 != 0 {
		t.Errorf("memory = %d, want even (functions move in pairs)", res.TotalMemory)
	}
}

func TestHybridNames(t *testing.T) {
	if NewHybridFunction(DefaultHybridConfig()).Name() != "Hybrid-Function" {
		t.Error("HF name")
	}
	if NewHybridApplication(DefaultHybridConfig()).Name() != "Hybrid-Application" {
		t.Error("HA name")
	}
	s := NewHybridFunction(DefaultHybridConfig()).String()
	if s == "" {
		t.Error("String empty")
	}
}

func TestHybridUnitWindows(t *testing.T) {
	cfg := DefaultHybridConfig()
	u := hybridUnit{hist: newTestHist(240)}
	// Not enough observations.
	u.hist.Add(10)
	u.windows(cfg)
	if u.usable {
		t.Error("unit with 1 observation should be unusable")
	}
	// Sharp peak at 60.
	for i := 0; i < 50; i++ {
		u.hist.Add(60)
	}
	u.windows(cfg)
	if !u.usable {
		t.Fatal("peaked histogram should be usable")
	}
	if u.prewarm < 40 || u.prewarm > 60 {
		t.Errorf("prewarm = %d, want ~54", u.prewarm)
	}
	if u.keepalive < 1 {
		t.Errorf("keepalive = %d", u.keepalive)
	}
	// Mostly out of bounds -> unusable.
	u2 := hybridUnit{hist: newTestHist(240)}
	for i := 0; i < 20; i++ {
		u2.hist.Add(1e6)
	}
	u2.hist.Add(5)
	u2.windows(cfg)
	if u2.usable {
		t.Error("OOB-dominated histogram should be unusable")
	}
}

func TestDedupSortInt32(t *testing.T) {
	got := dedupSortInt32([]int32{5, 1, 5, 3, 1})
	want := []int32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("dedup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dedup[%d] = %d", i, got[i])
		}
	}
	if got := dedupSortInt32(nil); len(got) != 0 {
		t.Error("dedup(nil)")
	}
	single := dedupSortInt32([]int32{7})
	if len(single) != 1 || single[0] != 7 {
		t.Error("dedup single")
	}
}
