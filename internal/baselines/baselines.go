// Package baselines implements the five schedulers the paper evaluates SPES
// against: a fixed keep-alive policy, the Hybrid histogram policy of
// Shahrad et al. (ATC'20) at function (HF) and application (HA)
// granularity, Defuse (Shen et al., ICDCS'21), FaaSCache (Fuerst & Sharma,
// ASPLOS'21), and — as an extension — LCS (Sethi et al., ICDCN'23).
//
// All policies implement sim.Policy. Parameters default to the settings the
// original papers report, as the SPES evaluation prescribes.
package baselines

import "repro/internal/trace"

// loadedSet tracks the loaded-function set with O(1) membership and count,
// shared by the baseline policies. Every actual flip is appended to the
// delta log, which backs the policies' sim.LoadDeltaTracker implementations
// (takeDeltas hands the log to the simulator's incremental accounting).
type loadedSet struct {
	loaded []bool
	count  int
	deltas []trace.FuncID
}

func newLoadedSet(n int) *loadedSet {
	return &loadedSet{loaded: make([]bool, n)}
}

// grow extends the tracked function space to at least n entries, for
// policies that discover their population lazily (no Train).
func (l *loadedSet) grow(n int) {
	for len(l.loaded) < n {
		l.loaded = append(l.loaded, false)
	}
}

func (l *loadedSet) has(f trace.FuncID) bool { return l.loaded[f] }

func (l *loadedSet) add(f trace.FuncID) {
	if !l.loaded[f] {
		l.loaded[f] = true
		l.count++
		l.deltas = append(l.deltas, f)
	}
}

func (l *loadedSet) remove(f trace.FuncID) {
	if l.loaded[f] {
		l.loaded[f] = false
		l.count--
		l.deltas = append(l.deltas, f)
	}
}

// takeDeltas returns the flips logged since the previous call and resets the
// log; the slice is valid until the set's next mutation. A nil receiver
// (policy not yet initialized) has no flips to report.
func (l *loadedSet) takeDeltas() ([]trace.FuncID, bool) {
	if l == nil {
		return nil, true
	}
	d := l.deltas
	l.deltas = l.deltas[:0]
	return d, true
}

// agenda schedules per-slot callbacks keyed by an owner id and a sequence
// number, letting policies cancel stale actions cheaply: an action fires
// only if the owner's sequence still matches the one it was scheduled with.
//
// This map-backed implementation is the retained REFERENCE engine: the
// deadline-based baselines run on a sched.Agenda timing wheel by default
// (same firing semantics, recycled bucket storage instead of per-slot map
// churn) and keep this one behind their MapAgenda config switches so the
// equivalence suite can assert the wheel engine bit-identical, mirroring
// core.Config.DenseScan.
type agenda struct {
	bySlot map[int][]agendaItem
	seq    []uint32 // current sequence per owner
}

type agendaItem struct {
	owner int
	seq   uint32
	what  int
}

func newAgenda(owners int) *agenda {
	return &agenda{bySlot: make(map[int][]agendaItem), seq: make([]uint32, owners)}
}

// grow extends the owner space to at least owners entries.
func (a *agenda) grow(owners int) {
	for len(a.seq) < owners {
		a.seq = append(a.seq, 0)
	}
}

// bump invalidates all outstanding actions of an owner.
func (a *agenda) bump(owner int) { a.seq[owner]++ }

// schedule enqueues action `what` for the owner at the given slot, bound to
// the owner's current sequence.
func (a *agenda) schedule(slot, owner, what int) {
	a.bySlot[slot] = append(a.bySlot[slot], agendaItem{owner: owner, seq: a.seq[owner], what: what})
}

// drain invokes fn for every still-valid action scheduled at slot and
// releases the slot's storage.
func (a *agenda) drain(slot int, fn func(owner, what int)) {
	items, ok := a.bySlot[slot]
	if !ok {
		return
	}
	delete(a.bySlot, slot)
	for _, it := range items {
		if a.seq[it.owner] == it.seq {
			fn(it.owner, it.what)
		}
	}
}
