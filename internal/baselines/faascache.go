package baselines

import (
	"container/heap"
	"fmt"

	"repro/internal/trace"
)

// gdsfState is the engine-agnostic Greedy-Dual-Size-Frequency scoring core
// shared by the unsharded FaaSCache driver and its capacity shard
// (capacity.go): frequencies, priorities, the (priority, FuncID) min-heap,
// and the loaded set. It scores and admits but never decides WHEN to evict
// — the unsharded driver enforces its capacity after every Train/Tick, and
// the sharded engine's global arbiter pops victims across shards. The clock
// is likewise written from outside: the unsharded driver ratchets it per
// eviction, the arbiter broadcasts the globally ratcheted value.
type gdsfState struct {
	set   *loadedSet
	clock float64
	freq  []int64
	prio  []float64
	h     *cacheHeap
	index []int // heap index per function, -1 when not loaded
}

func (s *gdsfState) init(n int) {
	s.set = newLoadedSet(n)
	s.clock = 0
	s.freq = make([]int64, n)
	s.prio = make([]float64, n)
	s.index = make([]int, n)
	for i := range s.index {
		s.index[i] = -1
	}
	s.h = &cacheHeap{owner: s}
}

// seed initializes the state from training invocation counts: frequencies
// are the training totals and every function ever invoked starts loaded —
// the state the cache would be in had it run through the training window
// with unbounded memory. Capacity is enforced by the caller.
func (s *gdsfState) seed(training *trace.Trace) {
	s.init(training.NumFunctions())
	for fid, ser := range training.Series {
		total := ser.Total()
		if total == 0 {
			continue
		}
		s.freq[fid] = total
		s.prio[fid] = float64(total)
		s.set.add(trace.FuncID(fid))
		heap.Push(s.h, fid)
	}
}

// observe applies one slot's invocations: bump frequencies, recompute
// priorities against the current clock, admit newcomers. No evictions.
func (s *gdsfState) observe(invs []trace.FuncCount) {
	for _, fc := range invs {
		f := int(fc.Func)
		s.freq[f]++
		s.prio[f] = s.clock + float64(s.freq[f])
		if s.index[f] >= 0 {
			heap.Fix(s.h, s.index[f])
		} else {
			s.set.add(fc.Func)
			heap.Push(s.h, f)
		}
	}
}

// peekMin returns the current eviction candidate — minimum (priority,
// FuncID) over the loaded set — without evicting.
func (s *gdsfState) peekMin() (float64, trace.FuncID, bool) {
	if len(s.h.items) == 0 {
		return 0, 0, false
	}
	f := s.h.items[0]
	return s.prio[f], trace.FuncID(f), true
}

// evictMin unloads the candidate peekMin reported. The clock ratchet is the
// caller's job.
func (s *gdsfState) evictMin() {
	victim := heap.Pop(s.h).(int)
	s.set.remove(trace.FuncID(victim))
}

// FaaSCache implements the Greedy-Dual-Size-Frequency caching policy of
// Fuerst & Sharma (ASPLOS'21): keeping a function warm is treated as
// keeping an object cached. Every function stays loaded until memory
// pressure forces an eviction of the lowest-priority instance, with
// priority = clock + frequency * cost / size. Under the paper's simulation
// principles cost and size are uniform, so priority reduces to
// clock + frequency; the clock ratchets up to each evicted priority,
// ageing cold entries out. Equal priorities evict in ascending FuncID
// order — the deterministic total order the sharded arbiter replays
// globally (capacity.go), kept identical here so this unsharded form stays
// the bit-identical reference.
type FaaSCache struct {
	capacity int
	gdsf     gdsfState
}

// NewFaaSCache creates the policy with a memory capacity in instances. The
// SPES evaluation sets capacity to the maximum memory SPES itself used.
func NewFaaSCache(capacity int) *FaaSCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("baselines: FaaSCache capacity must be positive, got %d", capacity))
	}
	return &FaaSCache{capacity: capacity}
}

// Name implements sim.Policy.
func (p *FaaSCache) Name() string { return "FaaSCache" }

// Train implements sim.Policy: training invocation counts seed the
// frequencies, and the cache starts the simulation holding the
// highest-priority functions up to capacity — the state it would be in had
// it run through the training window.
func (p *FaaSCache) Train(training *trace.Trace) {
	p.gdsf.seed(training)
	p.enforce()
}

// Tick implements sim.Policy.
func (p *FaaSCache) Tick(t int, invs []trace.FuncCount) {
	p.gdsf.observe(invs)
	p.enforce()
}

// enforce evicts lowest-(priority, FuncID) functions until the cache fits,
// ratcheting the GDSF clock to each evicted priority so future insertions
// outrank long-idle residents.
func (p *FaaSCache) enforce() {
	for p.gdsf.set.count > p.capacity {
		prio, _, _ := p.gdsf.peekMin()
		p.gdsf.evictMin()
		if prio > p.gdsf.clock {
			p.gdsf.clock = prio
		}
	}
}

// NextWake implements sim.IdleSkipper. FaaSCache has no timers: state only
// changes on invocations (an empty Tick cannot evict, because Train and Tick
// both leave the pool at or under capacity), so an invocation-free span never
// needs a wake-up.
func (p *FaaSCache) NextWake(after, limit int) (int, bool) { return -1, true }

// Loaded implements sim.Policy.
func (p *FaaSCache) Loaded(f trace.FuncID) bool { return p.gdsf.set.has(f) }

// LoadedCount implements sim.Policy.
func (p *FaaSCache) LoadedCount() int { return p.gdsf.set.count }

// cacheHeap is a min-heap over loaded functions ordered by (priority,
// FuncID). The FuncID tie-break makes the eviction order a deterministic
// total order — required for the sharded arbiter to reproduce it, and
// harmless unsharded (any tie-break satisfied GDSF before).
type cacheHeap struct {
	owner *gdsfState
	items []int
}

func (h *cacheHeap) Len() int { return len(h.items) }

func (h *cacheHeap) Less(i, j int) bool {
	fi, fj := h.items[i], h.items[j]
	if h.owner.prio[fi] != h.owner.prio[fj] {
		return h.owner.prio[fi] < h.owner.prio[fj]
	}
	return fi < fj
}

func (h *cacheHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.owner.index[h.items[i]] = i
	h.owner.index[h.items[j]] = j
}

func (h *cacheHeap) Push(x any) {
	f := x.(int)
	h.owner.index[f] = len(h.items)
	h.items = append(h.items, f)
}

func (h *cacheHeap) Pop() any {
	last := len(h.items) - 1
	f := h.items[last]
	h.items = h.items[:last]
	h.owner.index[f] = -1
	return f
}

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (p *FaaSCache) TakeLoadDeltas() ([]trace.FuncID, bool) { return p.gdsf.set.takeDeltas() }
