package baselines

import (
	"container/heap"
	"fmt"

	"repro/internal/trace"
)

// FaaSCache implements the Greedy-Dual-Size-Frequency caching policy of
// Fuerst & Sharma (ASPLOS'21): keeping a function warm is treated as
// keeping an object cached. Every function stays loaded until memory
// pressure forces an eviction of the lowest-priority instance, with
// priority = clock + frequency * cost / size. Under the paper's simulation
// principles cost and size are uniform, so priority reduces to
// clock + frequency; the clock ratchets up to each evicted priority,
// ageing cold entries out.
type FaaSCache struct {
	capacity int

	set   *loadedSet
	clock float64
	freq  []int64
	prio  []float64
	h     *cacheHeap
	index []int // heap index per function, -1 when not loaded
}

// NewFaaSCache creates the policy with a memory capacity in instances. The
// SPES evaluation sets capacity to the maximum memory SPES itself used.
func NewFaaSCache(capacity int) *FaaSCache {
	if capacity <= 0 {
		panic(fmt.Sprintf("baselines: FaaSCache capacity must be positive, got %d", capacity))
	}
	return &FaaSCache{capacity: capacity}
}

// Name implements sim.Policy.
func (p *FaaSCache) Name() string { return "FaaSCache" }

// Train implements sim.Policy: training invocation counts seed the
// frequencies, and the cache starts the simulation holding the
// highest-priority functions up to capacity — the state it would be in had
// it run through the training window.
func (p *FaaSCache) Train(training *trace.Trace) {
	n := training.NumFunctions()
	p.set = newLoadedSet(n)
	p.freq = make([]int64, n)
	p.prio = make([]float64, n)
	p.index = make([]int, n)
	for i := range p.index {
		p.index[i] = -1
	}
	p.h = &cacheHeap{owner: p}

	for fid, s := range training.Series {
		total := s.Total()
		if total == 0 {
			continue
		}
		p.freq[fid] = total
		p.prio[fid] = float64(total)
		p.set.add(trace.FuncID(fid))
		heap.Push(p.h, fid)
	}
	for p.set.count > p.capacity {
		victim := heap.Pop(p.h).(int)
		p.set.remove(trace.FuncID(victim))
		if p.prio[victim] > p.clock {
			p.clock = p.prio[victim]
		}
	}
}

// Tick implements sim.Policy.
func (p *FaaSCache) Tick(t int, invs []trace.FuncCount) {
	for _, fc := range invs {
		f := int(fc.Func)
		p.freq[f]++
		p.prio[f] = p.clock + float64(p.freq[f])
		if p.index[f] >= 0 {
			heap.Fix(p.h, p.index[f])
		} else {
			p.set.add(fc.Func)
			heap.Push(p.h, f)
		}
	}
	for p.set.count > p.capacity {
		victim := heap.Pop(p.h).(int)
		p.set.remove(trace.FuncID(victim))
		// GDSF clock: future insertions outrank long-idle residents.
		if p.prio[victim] > p.clock {
			p.clock = p.prio[victim]
		}
	}
}

// NextWake implements sim.IdleSkipper. FaaSCache has no timers: state only
// changes on invocations (an empty Tick cannot evict, because Train and Tick
// both leave the pool at or under capacity), so an invocation-free span never
// needs a wake-up.
func (p *FaaSCache) NextWake(after, limit int) (int, bool) { return -1, true }

// Loaded implements sim.Policy.
func (p *FaaSCache) Loaded(f trace.FuncID) bool { return p.set.has(f) }

// LoadedCount implements sim.Policy.
func (p *FaaSCache) LoadedCount() int { return p.set.count }

// cacheHeap is a min-heap over loaded functions ordered by priority.
type cacheHeap struct {
	owner *FaaSCache
	items []int
}

func (h *cacheHeap) Len() int { return len(h.items) }

func (h *cacheHeap) Less(i, j int) bool {
	return h.owner.prio[h.items[i]] < h.owner.prio[h.items[j]]
}

func (h *cacheHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.owner.index[h.items[i]] = i
	h.owner.index[h.items[j]] = j
}

func (h *cacheHeap) Push(x any) {
	f := x.(int)
	h.owner.index[f] = len(h.items)
	h.items = append(h.items, f)
}

func (h *cacheHeap) Pop() any {
	last := len(h.items) - 1
	f := h.items[last]
	h.items = h.items[:last]
	h.owner.index[f] = -1
	return f
}

// TakeLoadDeltas implements sim.LoadDeltaTracker.
func (p *FaaSCache) TakeLoadDeltas() ([]trace.FuncID, bool) { return p.set.takeDeltas() }
