package baselines

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

var (
	_ sim.CapacityPolicy = (*FaaSCache)(nil)
	_ sim.CapacityPolicy = (*LCS)(nil)
	_ sim.ClockCoupled   = (*faasCacheShard)(nil)
	_ sim.ConfigHasher   = (*FaaSCache)(nil)
	_ sim.ConfigHasher   = (*LCS)(nil)
)

// tieTrace builds the adversarial tie workload: 8 functions, each its own
// app and user (so each is a singleton partition component and round-robins
// onto shard i%P — equal-score candidates always span shards), all invoked
// together so scores tie exactly. Full-trace slots: 1 (all), 3 (all),
// 5 (f0..f2); split at 1, so sim slots 0, 2, 4.
func tieTrace(t *testing.T) (train, simTr *trace.Trace) {
	t.Helper()
	full := trace.NewTrace(6)
	for i := 0; i < 8; i++ {
		events := []trace.Event{{Slot: 1, Count: 1}, {Slot: 3, Count: 1}}
		if i < 3 {
			events = append(events, trace.Event{Slot: 5, Count: 1})
		}
		full.AddFunction(
			string(rune('a'+i)), "app"+string(rune('0'+i)), "user"+string(rune('0'+i)),
			trace.TriggerHTTP, events)
	}
	return full.Split(1)
}

// TestCapacityArbiterTieBreak pins the arbiter's tie-break to the unsharded
// eviction order. With capacity 5 and all 8 functions invoked together,
// every score ties (equal GDSF priority, equal LRU recency), so the victims
// are decided purely by the FuncID rule: slots 0 and 2 must evict f0,f1,f2
// (lowest FuncIDs among the tie), making them — and only them — cold again
// at the next round. Shard counts 2 and 3 scatter the tied candidates
// across different shards; every run must reproduce the unsharded
// per-function cold-start vector exactly.
func TestCapacityArbiterTieBreak(t *testing.T) {
	train, simTr := tieTrace(t)
	// Slot 0: all 8 cold, pool over budget, tie → f0,f1,f2 evicted.
	// Slot 2: all invoked again → exactly f0,f1,f2 cold; ties again →
	// f0,f1,f2 evicted again.
	// Slot 4: f0,f1,f2 invoked → cold again; their refreshed scores now
	// beat the rest, so f3,f4,f5 go instead.
	wantCold := []int64{3, 3, 3, 1, 1, 1, 1, 1}

	for _, mk := range []func() sim.Policy{
		func() sim.Policy { return NewFaaSCache(5) },
		func() sim.Policy { return NewLCS(5) },
	} {
		ref, err := sim.Run(mk(), train, simTr, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for fid, want := range wantCold {
			if got := ref.PerFunc[fid].ColdStarts; got != want {
				t.Errorf("%s unsharded: f%d cold starts = %d, want %d (FuncID tie-break)",
					ref.Policy, fid, got, want)
			}
		}
		for _, shards := range []int{2, 3} {
			got, err := sim.Run(mk(), train, simTr, sim.Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			for fid := range wantCold {
				if got.PerFunc[fid] != ref.PerFunc[fid] {
					t.Errorf("%s x%d: f%d per-func %+v, want %+v",
						ref.Policy, shards, fid, got.PerFunc[fid], ref.PerFunc[fid])
				}
			}
			if got.TotalColdStarts != ref.TotalColdStarts || got.TotalWMT != ref.TotalWMT ||
				got.TotalMemory != ref.TotalMemory || got.MaxLoaded != ref.MaxLoaded {
				t.Errorf("%s x%d: totals diverge: %+v vs %+v", ref.Policy, shards, got, ref)
			}
		}
	}
}

// TestCapacityConfigHashSeparation asserts the capacity baselines'
// ConfigHash covers both the capacity and the engine choice: different
// capacities and different policies must never share a hash.
func TestCapacityConfigHashSeparation(t *testing.T) {
	hashes := map[uint64]string{}
	for _, c := range []struct {
		label string
		hash  uint64
	}{
		{"faascache-10", NewFaaSCache(10).ConfigHash()},
		{"faascache-20", NewFaaSCache(20).ConfigHash()},
		{"lcs-10", NewLCS(10).ConfigHash()},
		{"lcs-20", NewLCS(20).ConfigHash()},
	} {
		if prev, ok := hashes[c.hash]; ok {
			t.Errorf("%s collides with %s", c.label, prev)
		}
		hashes[c.hash] = c.label
	}
	if NewFaaSCache(10).ConfigHash() != NewFaaSCache(10).ConfigHash() {
		t.Error("FaaSCache hash not stable")
	}
}
