// Package series extracts the activity descriptors SPES is built on from
// per-slot invocation sequences: waiting times (WT), active times (AT), and
// active numbers (AN), as defined in Section IV of the paper, together with
// the slack rules that pre-process WT sequences before categorization.
//
// Throughout the package an invocation sequence is a []int of per-slot
// invocation counts (one slot = one minute in the reproduction's default
// configuration). Counts are never negative; negative inputs are treated as
// zero to stay robust against malformed trace rows.
package series

// Activity bundles the three descriptors extracted from one invocation
// sequence.
//
// Using the paper's example, the sequence (28, 0, 12, 1, 0, 0, 0, 7) yields
// WT = (1, 3): a one-slot gap after the first active run and a three-slot
// gap before the last; AT = (1, 2, 1): active runs at slots 1, 3-4, and 8;
// AN = (28, 13, 7): total invocations of each active run. Leading and
// trailing idle slots are not waiting times — a WT is the gap *between* two
// active runs.
type Activity struct {
	WT []int // gaps (in slots) between successive active runs
	AT []int // lengths (in slots) of active runs
	AN []int // total invocation count of each active run

	LeadingIdle  int // idle slots before the first invocation
	TrailingIdle int // idle slots after the last invocation
	Slots        int // total sequence length
	Invocations  int // total invocation count
}

// Extract computes the Activity of an invocation sequence.
func Extract(counts []int) Activity {
	a := Activity{Slots: len(counts)}
	runStart := -1 // start of the current active run, -1 when idle
	runSum := 0
	lastActiveEnd := -1 // index just past the previous active run

	for i, raw := range counts {
		c := raw
		if c < 0 {
			c = 0
		}
		if c > 0 {
			a.Invocations += c
			if runStart < 0 {
				runStart = i
				runSum = 0
				if lastActiveEnd < 0 {
					a.LeadingIdle = i
				} else if gap := i - lastActiveEnd; gap > 0 {
					a.WT = append(a.WT, gap)
				}
			}
			runSum += c
		} else if runStart >= 0 {
			a.AT = append(a.AT, i-runStart)
			a.AN = append(a.AN, runSum)
			lastActiveEnd = i
			runStart = -1
		}
	}
	if runStart >= 0 {
		a.AT = append(a.AT, len(counts)-runStart)
		a.AN = append(a.AN, runSum)
	} else if lastActiveEnd >= 0 {
		a.TrailingIdle = len(counts) - lastActiveEnd
	} else {
		// Never invoked: the whole sequence is leading idle.
		a.LeadingIdle = len(counts)
	}
	return a
}

// ActiveSlots returns the number of slots with at least one invocation.
func (a Activity) ActiveSlots() int {
	total := 0
	for _, at := range a.AT {
		total += at
	}
	return total
}

// IdleSlots returns the number of slots with no invocation.
func (a Activity) IdleSlots() int {
	return a.Slots - a.ActiveSlots()
}

// TotalWT returns the sum of all waiting times (inter-run idle only; leading
// and trailing idle are excluded, matching the always-warm definition's
// "sum of inter-invocation time").
func (a Activity) TotalWT() int {
	total := 0
	for _, wt := range a.WT {
		total += wt
	}
	return total
}

// InvokedEverySlot reports whether every slot of the sequence carried at
// least one invocation (and the sequence is non-empty).
func (a Activity) InvokedEverySlot() bool {
	return a.Slots > 0 && a.ActiveSlots() == a.Slots
}

// InterArrivalTimes returns the gaps (in slots) between successive invoked
// slots, the IAT statistic the Hybrid baseline histograms. A function
// invoked at slots 3, 5, 6 yields (2, 1).
func InterArrivalTimes(counts []int) []int {
	var iats []int
	prev := -1
	for i, c := range counts {
		if c <= 0 {
			continue
		}
		if prev >= 0 {
			iats = append(iats, i-prev)
		}
		prev = i
	}
	return iats
}

// InvokedSlots returns the indices of slots with at least one invocation.
func InvokedSlots(counts []int) []int {
	var out []int
	for i, c := range counts {
		if c > 0 {
			out = append(out, i)
		}
	}
	return out
}
