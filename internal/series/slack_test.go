package series

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestTrimEnds(t *testing.T) {
	tests := []struct {
		name string
		in   []int
		want []int
	}{
		{"normal", []int{9, 5, 5, 5, 9}, []int{5, 5, 5}},
		{"too short", []int{1, 2}, nil},
		{"single", []int{1}, nil},
		{"empty", nil, nil},
		{"exactly three", []int{1, 2, 3}, []int{2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TrimEnds(tt.in); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("TrimEnds(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestTrimEndsDoesNotMutate(t *testing.T) {
	in := []int{1, 2, 3, 4}
	out := TrimEnds(in)
	out[0] = 99
	if in[1] != 2 {
		t.Error("TrimEnds shares backing array with input")
	}
}

func TestMergeSmallWTsPaperExample(t *testing.T) {
	// The paper: (1439, 1438, 1, 1439, 1438, 1) becomes
	// (1439, 1439, 1439, 1439) — each stray 1 merges into the preceding
	// near-mode WT, reconstructing the daily period.
	in := []int{1439, 1438, 1, 1439, 1438, 1}
	got := MergeSmallWTs(in, 1, 0.1)
	want := []int{1439, 1438 + 1 + 1, 1439, 1438 + 1 + 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeSmallWTs = %v, want %v", got, want)
	}
	// All merged values are near-daily.
	for _, wt := range got {
		if wt < 1438 || wt > 1441 {
			t.Errorf("merged WT %d not near daily period", wt)
		}
	}
}

func TestMergeSmallWTsStopsAtNearMode(t *testing.T) {
	// A small WT followed directly by another near-mode WT: the small one
	// merges, then merging stops at the next near-mode value (rule 2).
	in := []int{100, 5, 100, 100}
	got := MergeSmallWTs(in, 1, 0.1)
	want := []int{106, 100, 100}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeSmallWTs = %v, want %v", got, want)
	}
}

func TestMergeSmallWTsNonMode(t *testing.T) {
	// WTs far from the mode are passed through untouched.
	in := []int{100, 100, 37, 100}
	got := MergeSmallWTs(in, 1, 0.1)
	if !reflect.DeepEqual(got, in) {
		t.Errorf("MergeSmallWTs = %v, want unchanged %v", got, in)
	}
}

func TestMergeSmallWTsEdge(t *testing.T) {
	if got := MergeSmallWTs(nil, 1, 0.1); got != nil {
		t.Errorf("MergeSmallWTs(nil) = %v", got)
	}
	// Mode <= 0 cannot happen with genuine WTs, but must not panic.
	got := MergeSmallWTs([]int{0, 0}, 1, 0.1)
	if !reflect.DeepEqual(got, []int{0, 0}) {
		t.Errorf("MergeSmallWTs zeros = %v", got)
	}
}

func TestMergeSmallWTsDoesNotMutate(t *testing.T) {
	in := []int{100, 100, 5, 100}
	snapshot := append([]int(nil), in...)
	MergeSmallWTs(in, 1, 0.1)
	if !reflect.DeepEqual(in, snapshot) {
		t.Error("MergeSmallWTs mutated its input")
	}
}

func TestSlackVariants(t *testing.T) {
	// Raw, trimmed, merged should all be distinct for this input.
	in := []int{7, 1439, 1438, 1, 1439, 3}
	variants := SlackVariants(in, 1, 0.1)
	if len(variants) != 3 {
		t.Fatalf("variants = %d, want 3: %v", len(variants), variants)
	}
	if !reflect.DeepEqual(variants[0], in) {
		t.Errorf("variant 0 = %v, want raw", variants[0])
	}
	if !reflect.DeepEqual(variants[1], []int{1439, 1438, 1, 1439}) {
		t.Errorf("variant 1 = %v", variants[1])
	}
	if !reflect.DeepEqual(variants[2], []int{1439, 1440, 1439}) {
		t.Errorf("variant 2 = %v", variants[2])
	}
}

func TestSlackVariantsShortInput(t *testing.T) {
	if got := SlackVariants(nil, 1, 0.1); len(got) != 0 {
		t.Errorf("SlackVariants(nil) = %v", got)
	}
	got := SlackVariants([]int{5}, 1, 0.1)
	if len(got) != 1 || !reflect.DeepEqual(got[0], []int{5}) {
		t.Errorf("SlackVariants single = %v", got)
	}
}

// Property: merging never increases sequence length and conserves
// "time plus absorbed slots": sum(out) >= sum(in), with equality when
// nothing merged.
func TestMergeSmallWTsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		in := make([]int, len(raw))
		for i, v := range raw {
			in[i] = int(v)%200 + 1
		}
		out := MergeSmallWTs(in, 1, 0.1)
		if len(out) > len(in) {
			return false
		}
		if stats.SumInts(out) < stats.SumInts(in) {
			return false
		}
		// Every absorbed WT adds exactly one extra slot.
		absorbed := len(in) - len(out)
		return stats.SumInts(out) == stats.SumInts(in)+int64(absorbed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
