package series

import "sort"

// The slack rules of Section IV-A2 relax a WT sequence before re-testing the
// "regular" definition: real-world periodic functions suffer boundary
// truncation (the first/last WT of an observation window is arbitrary) and
// occasional extra invocations that split one true period into several small
// gaps.

// TrimEnds returns wts without its first and last elements (the paper's
// first slacking rule). Sequences with fewer than three elements trim to
// empty rather than panicking.
func TrimEnds(wts []int) []int {
	if len(wts) <= 2 {
		return nil
	}
	out := make([]int, len(wts)-2)
	copy(out, wts[1:len(wts)-1])
	return out
}

// MergeSmallWTs applies the paper's second slacking rule: for each WT close
// in value to the WT mode, adjacent small WTs are merged into it until
// reaching (1) the sequence's end, (2) another near-mode WT, or (3) an
// already-merged WT. Intuitively, a period occasionally interrupted by a
// stray invocation produces (1439, 1438, 1, ...) and should read as
// (1439, 1439, ...).
//
// closeTol bounds |wt - mode| for a WT to count as near-mode; smallFrac
// bounds wt/mode for a WT to count as "small" and be mergeable. The paper
// leaves both implicit; defaults used by the classifier are closeTol = 1 and
// smallFrac = 0.1. The input is not mutated.
func MergeSmallWTs(wts []int, closeTol int, smallFrac float64) []int {
	if len(wts) == 0 {
		return nil
	}
	return MergeSmallWTsWithMode(wts, mergeReferenceMode(wts), closeTol, smallFrac)
}

// MergeSmallWTsWithMode is MergeSmallWTs with the reference mode supplied by
// the caller (equal to MergeReferenceModeSorted of the sorted sequence), for
// callers that already hold a sorted copy.
func MergeSmallWTsWithMode(wts []int, mode, closeTol int, smallFrac float64) []int {
	if len(wts) == 0 {
		return nil
	}
	if mode <= 0 {
		out := make([]int, len(wts))
		copy(out, wts)
		return out
	}
	isNearMode := func(wt int) bool {
		d := wt - mode
		if d < 0 {
			d = -d
		}
		return d <= closeTol
	}
	isSmall := func(wt int) bool {
		return float64(wt) <= smallFrac*float64(mode) && !isNearMode(wt)
	}

	merged := make([]bool, len(wts)) // slot already absorbed into a near-mode WT
	out := make([]int, 0, len(wts))
	for i, wt := range wts {
		if merged[i] {
			continue
		}
		if !isNearMode(wt) {
			out = append(out, wt)
			continue
		}
		// Absorb following small WTs into this near-mode WT. Each absorbed
		// small gap also swallowed one active slot between the gaps, so the
		// reconstructed period grows by (small WT + 1).
		total := wt
		j := i + 1
		for j < len(wts) && isSmall(wts[j]) && !merged[j] {
			total += wts[j] + 1
			merged[j] = true
			j++
		}
		out = append(out, total)
	}
	return out
}

// mergeReferenceMode picks the WT value the merge rule treats as "the mode":
// among the most frequent values, the largest. Stray interruptions split one
// true period into a large near-period WT and a small artifact, so ties
// between large and small values must resolve toward the period (in the
// paper's example (1439, 1438, 1, 1439, 1438, 1) every value occurs twice,
// and the intended mode is the near-daily 1439, not the artifact 1).
func mergeReferenceMode(wts []int) int {
	if len(wts) == 0 {
		return 0
	}
	sorted := make([]int, len(wts))
	copy(sorted, wts)
	sort.Ints(sorted)
	return MergeReferenceModeSorted(sorted)
}

// MergeReferenceModeSorted computes the merge rule's reference mode from an
// ascending-sorted WT sequence in one run-length scan: values ascend, so
// "largest among the most frequent" is the last run whose length ties the
// best.
func MergeReferenceModeSorted(sorted []int) int {
	bestVal, bestCount := 0, 0
	runStart := 0
	for i := 1; i <= len(sorted); i++ {
		if i == len(sorted) || sorted[i] != sorted[runStart] {
			if c := i - runStart; c >= bestCount {
				bestCount = c
				bestVal = sorted[runStart]
			}
			runStart = i
		}
	}
	return bestVal
}

// SlackVariants returns the candidate WT sequences the classifier tests in
// order: the raw sequence, the end-trimmed sequence, and the merged sequence
// (built from the trimmed one, mirroring the paper's cascade of slacking
// rules). Empty variants are omitted.
func SlackVariants(wts []int, closeTol int, smallFrac float64) [][]int {
	var variants [][]int
	if len(wts) > 0 {
		variants = append(variants, wts)
	}
	trimmed := TrimEnds(wts)
	if len(trimmed) > 0 {
		variants = append(variants, trimmed)
	}
	base := trimmed
	if len(base) == 0 {
		base = wts
	}
	mergedSeq := MergeSmallWTs(base, closeTol, smallFrac)
	if len(mergedSeq) > 0 && len(mergedSeq) != len(base) {
		variants = append(variants, mergedSeq)
	}
	return variants
}
