package series

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestExtractPaperExample(t *testing.T) {
	// The worked example from Section IV of the paper.
	counts := []int{28, 0, 12, 1, 0, 0, 0, 7}
	a := Extract(counts)
	if !reflect.DeepEqual(a.WT, []int{1, 3}) {
		t.Errorf("WT = %v, want [1 3]", a.WT)
	}
	if !reflect.DeepEqual(a.AT, []int{1, 2, 1}) {
		t.Errorf("AT = %v, want [1 2 1]", a.AT)
	}
	if !reflect.DeepEqual(a.AN, []int{28, 13, 7}) {
		t.Errorf("AN = %v, want [28 13 7]", a.AN)
	}
	if a.Invocations != 48 {
		t.Errorf("Invocations = %d, want 48", a.Invocations)
	}
	if a.LeadingIdle != 0 || a.TrailingIdle != 0 {
		t.Errorf("idle = (%d, %d), want (0, 0)", a.LeadingIdle, a.TrailingIdle)
	}
}

func TestExtractEdges(t *testing.T) {
	tests := []struct {
		name     string
		counts   []int
		wt       []int
		at       []int
		an       []int
		leading  int
		trailing int
	}{
		{"empty", nil, nil, nil, nil, 0, 0},
		{"all idle", []int{0, 0, 0}, nil, nil, nil, 3, 0},
		{"all active", []int{1, 2, 3}, nil, []int{3}, []int{6}, 0, 0},
		{"leading idle", []int{0, 0, 5}, nil, []int{1}, []int{5}, 2, 0},
		{"trailing idle", []int{5, 0, 0}, nil, []int{1}, []int{5}, 0, 2},
		{"single slot", []int{9}, nil, []int{1}, []int{9}, 0, 0},
		{"two runs", []int{1, 0, 0, 1}, []int{2}, []int{1, 1}, []int{1, 1}, 0, 0},
		{"negative treated as zero", []int{1, -5, 1}, []int{1}, []int{1, 1}, []int{1, 1}, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := Extract(tt.counts)
			if !reflect.DeepEqual(a.WT, tt.wt) {
				t.Errorf("WT = %v, want %v", a.WT, tt.wt)
			}
			if !reflect.DeepEqual(a.AT, tt.at) {
				t.Errorf("AT = %v, want %v", a.AT, tt.at)
			}
			if !reflect.DeepEqual(a.AN, tt.an) {
				t.Errorf("AN = %v, want %v", a.AN, tt.an)
			}
			if a.LeadingIdle != tt.leading {
				t.Errorf("LeadingIdle = %d, want %d", a.LeadingIdle, tt.leading)
			}
			if a.TrailingIdle != tt.trailing {
				t.Errorf("TrailingIdle = %d, want %d", a.TrailingIdle, tt.trailing)
			}
		})
	}
}

func TestActivityDerived(t *testing.T) {
	a := Extract([]int{1, 0, 1, 1, 0, 0, 2})
	if got := a.ActiveSlots(); got != 4 {
		t.Errorf("ActiveSlots = %d, want 4", got)
	}
	if got := a.IdleSlots(); got != 3 {
		t.Errorf("IdleSlots = %d, want 3", got)
	}
	if got := a.TotalWT(); got != 3 {
		t.Errorf("TotalWT = %d, want 3", got)
	}
	if a.InvokedEverySlot() {
		t.Error("InvokedEverySlot = true, want false")
	}
	full := Extract([]int{1, 1})
	if !full.InvokedEverySlot() {
		t.Error("InvokedEverySlot = false for fully active sequence")
	}
	empty := Extract(nil)
	if empty.InvokedEverySlot() {
		t.Error("InvokedEverySlot = true for empty sequence")
	}
}

func TestInterArrivalTimes(t *testing.T) {
	tests := []struct {
		name   string
		counts []int
		want   []int
	}{
		{"paper-style", []int{1, 0, 1, 1, 0, 0, 1}, []int{2, 1, 3}},
		{"single invocation", []int{0, 1, 0}, nil},
		{"none", []int{0, 0}, nil},
		{"adjacent", []int{2, 3}, []int{1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InterArrivalTimes(tt.counts); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("IAT = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestInvokedSlots(t *testing.T) {
	got := InvokedSlots([]int{0, 2, 0, 1})
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("InvokedSlots = %v", got)
	}
	if got := InvokedSlots([]int{0}); got != nil {
		t.Errorf("InvokedSlots all-idle = %v, want nil", got)
	}
}

// Property: slot accounting is conserved:
// leading + trailing + sum(WT) + sum(AT) == len(counts).
func TestExtractConservationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v % 4) // mix of zeros and small counts
		}
		a := Extract(counts)
		return a.LeadingIdle+a.TrailingIdle+a.TotalWT()+a.ActiveSlots() == len(counts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: WT has exactly one fewer element than AT when there are active
// runs (gaps sit strictly between runs), and AT and AN are parallel.
func TestExtractStructureProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v % 3)
		}
		a := Extract(counts)
		if len(a.AT) != len(a.AN) {
			return false
		}
		if len(a.AT) == 0 {
			return len(a.WT) == 0
		}
		return len(a.WT) == len(a.AT)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total invocations match the raw sum, and every AN entry is
// positive.
func TestExtractInvocationSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		sum := 0
		for i, v := range raw {
			counts[i] = int(v % 5)
			sum += counts[i]
		}
		a := Extract(counts)
		if a.Invocations != sum {
			return false
		}
		for _, an := range a.AN {
			if an <= 0 {
				return false
			}
		}
		for _, wt := range a.WT {
			if wt <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
