package faultinject_test

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/sim"
	"repro/internal/trace"
)

// aggressive rates: high enough that a 3-seed mini-sweep draws every fault
// class (the schedule is a pure hash, so the coverage below is
// deterministic, not probabilistic flake), low enough that retries and
// corrupt-is-a-miss keep every run completing.
func aggressive() faultinject.Config {
	return faultinject.Config{
		ReadErr:     400,
		BitFlip:     400,
		WriteErr:    400,
		ShortWrite:  400,
		RenameErr:   300,
		WorkerPanic: 500,
		SlowShard:   300,
		SlowDelay:   time.Millisecond,
	}
}

const shards = 4

var thetas = []int{1, 3, 10}

// miniSweep runs a small theta sweep (cold pass, then a restarted-process
// pass through a fresh in-memory cache over the same disk tier) and
// returns all results.
func miniSweep(t *testing.T, train, simTr *trace.Trace, disk *sim.DiskCache, hook sim.ShardFaultHook) []*sim.Result {
	t.Helper()
	var out []*sim.Result
	retry := sim.RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	for pass := 0; pass < 2; pass++ {
		cache := sim.NewShardCache()
		cache.AttachDisk(disk)
		sweep, err := sim.NewSweep(train, simTr, sim.Options{
			Shards: shards, Cache: cache, FaultHook: hook, Retry: retry})
		if err != nil {
			t.Fatal(err)
		}
		for _, theta := range thetas {
			cfg := core.DefaultConfig()
			cfg.Classify.ThetaPrewarm = theta
			res, err := sweep.Run(core.New(cfg))
			if err != nil {
				t.Fatalf("pass %d theta %d: %v", pass, theta, err)
			}
			out = append(out, res)
		}
	}
	return out
}

// The harness's reason to exist: for every seed, a run under injected
// disk faults and worker crashes that completes must be bit-identical to
// the clean run — and across the seeds, every fault class must actually
// have fired.
func TestCompletedFaultedRunsBitIdentical(t *testing.T) {
	s := experiments.SparseSettings(120, 1)
	_, train, simTr, err := experiments.BuildWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	cleanDisk, err := sim.OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clean := miniSweep(t, train, simTr, cleanDisk, nil)

	union := make(map[string]int64)
	for seed := int64(1); seed <= 3; seed++ {
		inj := faultinject.New(seed, aggressive())
		disk, err := sim.OpenDiskCacheFS(t.TempDir(), inj.FS())
		if err != nil {
			t.Fatal(err)
		}
		faulted := miniSweep(t, train, simTr, disk, inj)
		for i := range clean {
			a, b := *clean[i], *faulted[i]
			a.Overhead, b.Overhead = 0, 0
			if !reflect.DeepEqual(&a, &b) {
				t.Errorf("seed %d result %d diverged under faults (%s)", seed, i, inj)
			}
		}
		if inj.Total() == 0 {
			t.Errorf("seed %d injected nothing — the harness is not exercising the fault surface", seed)
		}
		t.Logf("seed %d: %s", seed, inj)
		for class, n := range inj.Counts() {
			union[class] += n
		}
	}
	for _, class := range []string{"readerr", "bitflip", "writeerr", "shortwrite", "renameerr", "panic", "slow"} {
		if union[class] == 0 {
			t.Errorf("fault class %q never fired across 3 seeds — raise its rate or the workload size", class)
		}
	}
}

// Same seed, same operations ⇒ same schedule: fault decisions, corrupted
// bytes, and counts must reproduce exactly across injector instances.
func TestScheduleDeterministic(t *testing.T) {
	s := experiments.SparseSettings(120, 1)
	_, train, simTr, err := experiments.BuildWorkload(s)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]map[string]int64, 2)
	var results [2][]*sim.Result
	for run := 0; run < 2; run++ {
		inj := faultinject.New(99, aggressive())
		disk, err := sim.OpenDiskCacheFS(t.TempDir(), inj.FS())
		if err != nil {
			t.Fatal(err)
		}
		results[run] = miniSweep(t, train, simTr, disk, inj)
		counts[run] = inj.Counts()
	}
	if !reflect.DeepEqual(counts[0], counts[1]) {
		t.Errorf("same seed drew different schedules: %v vs %v", counts[0], counts[1])
	}
	for i := range results[0] {
		a, b := *results[0][i], *results[1][i]
		a.Overhead, b.Overhead = 0, 0
		if !reflect.DeepEqual(&a, &b) {
			t.Errorf("same seed produced different results at %d", i)
		}
	}
}

// Injected errors must classify as transient so the retry layers treat
// them as curable — including through wrapping.
func TestInjectedErrorsAreTransient(t *testing.T) {
	e := &faultinject.Error{Site: "readerr", Subject: "shard-xyz.sce", Seq: 3}
	if !sim.IsTransient(e) {
		t.Error("injected error not classified transient")
	}
	if sim.IsTransient(nil) {
		t.Error("nil classified transient")
	}
	if e.Error() == "" {
		t.Error("empty error string")
	}
}
