// Package faultinject is the deterministic fault-injection harness behind
// the simulation engine's fault-tolerance layer: a seeded Injector that
// produces filesystem faults (read/write/rename errors, short writes, bit
// flips) behind the sim.DiskCache filesystem seam and worker faults
// (panics, artificial slowness) at the shard boundary, on a reproducible
// schedule.
//
// Determinism model: every injection decision is a pure hash of (seed,
// fault site, subject, sequence) — never a stateful RNG draw — so the
// schedule does not depend on goroutine interleaving across subjects. The
// subject is chosen to be stable: final entry filenames for reads and
// renames, the content hash of the bytes being written for temp-file
// writes (temp names embed a random component, content does not), and the
// shard index for worker faults. The sequence is a per-subject counter, so
// a retried operation rolls a fresh decision — which is what lets a
// transient injected fault be cured by the retry that the fault-tolerance
// layer owes it. Two runs with the same seed, workload, and configuration
// therefore draw the same faults per subject, and — the invariant the
// harness exists to prove — any injected run that completes must be
// bit-identical to the clean run (asserted by `eqvcheck -faults` and the
// fault-injection tests).
//
// The dependency arrow points one way: this package implements the seams
// sim declares (sim.CacheFS / sim.CacheFile for the disk tier,
// sim.ShardFaultHook for workers), and its injected errors advertise
// themselves as transient through the `Transient() bool` method
// sim.IsTransient sniffs for — sim itself never imports the harness.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config sets per-class injection rates in permille (0..1000) of eligible
// operations. The zero value injects nothing.
type Config struct {
	ReadErr    int // reads failing with a transient I/O error
	BitFlip    int // successful reads returning a single-bit-corrupted copy
	WriteErr   int // temp-file writes failing with a transient I/O error
	ShortWrite int // temp-file writes silently persisting only a prefix (a lying disk)
	RenameErr  int // renames failing with a transient I/O error

	WorkerPanic int           // first-attempt shard simulations panicking (retry attempts never re-panic, so the run can complete)
	SlowShard   int           // shard attempts sleeping SlowDelay before simulating
	SlowDelay   time.Duration // sleep per slow shard (default 20ms when SlowShard > 0)

	// Serving fault classes (internal/serve). The daemon and load client
	// draw these themselves — same (seed, site, subject, seq) schedule, same
	// invariant: any injected serving run that completes must reach the same
	// policy state hash as the clean run.
	DropConn        int           // ingest requests aborted server-side (the client sees a dropped connection and retries)
	SlowClient      int           // load-client batches stalled before transmission
	SlowClientDelay time.Duration // stall per slow batch (default 20ms when SlowClient > 0)
	TornSnapshot    int           // serving snapshot writes persisting only a prefix (lying disk: the rename still lands)
}

// Default returns aggressive-but-recoverable rates: high enough that a
// small run draws every fault class, low enough that bounded retries and
// the corrupt-entry-is-a-miss rule keep the run completing. Used by
// `eqvcheck -faults` and the faultsmoke CI job.
func Default() Config {
	return Config{
		ReadErr:     150,
		BitFlip:     150,
		WriteErr:    150,
		ShortWrite:  150,
		RenameErr:   100,
		WorkerPanic: 300,
		SlowShard:   200,
		SlowDelay:   5 * time.Millisecond,
	}
}

// ServeDefault returns the serving-mode counterpart of Default: dropped
// connections and client stalls frequent enough that a short load replay
// exercises the retry/dedup path, torn snapshots frequent enough that a
// kill-and-restore run falls back across snapshot generations. Used by the
// `-faults` flag of cmd/spes-serve and cmd/spes-load and the servesmoke CI
// job.
func ServeDefault() Config {
	return Config{
		DropConn:        60,
		SlowClient:      100,
		SlowClientDelay: 2 * time.Millisecond,
		TornSnapshot:    300,
	}
}

// Error is an injected fault, distinguishable from real I/O errors and
// marked transient so the retry layers (DiskCache write retries, shard
// re-runs) treat it as curable.
type Error struct {
	Site    string // fault class ("readerr", "writeerr", "renameerr")
	Subject string // stable operation subject (entry filename, content hash)
	Seq     uint64 // per-subject operation sequence the fault fired on
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected %s on %s (op %d)", e.Site, e.Subject, e.Seq)
}

// Transient reports true: an injected fault models a hiccup, and a retry
// rolls a fresh schedule decision.
func (e *Error) Transient() bool { return true }

// Injector draws faults on a seeded deterministic schedule. Safe for
// concurrent use.
type Injector struct {
	seed uint64
	cfg  Config

	mu     sync.Mutex
	seq    map[string]uint64 // per-(site-class:subject) operation counters
	counts map[string]int64  // injections per fault class
}

// New returns an Injector for the given seed and rates.
func New(seed int64, cfg Config) *Injector {
	if cfg.SlowShard > 0 && cfg.SlowDelay <= 0 {
		cfg.SlowDelay = 20 * time.Millisecond
	}
	return &Injector{
		seed:   uint64(seed),
		cfg:    cfg,
		seq:    make(map[string]uint64),
		counts: make(map[string]int64),
	}
}

// next increments and returns the per-subject operation counter.
func (in *Injector) next(k string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq[k]++
	return in.seq[k]
}

// roll is the schedule: a pure hash of (seed, site, subject, seq) mapped
// to [0, 1000).
func (in *Injector) roll(site, subject string, seq uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i, v := 0, in.seed; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(site))
	h.Write([]byte{0})
	h.Write([]byte(subject))
	h.Write([]byte{0})
	for i := 0; i < 8; i++ {
		b[i] = byte(seq >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64() % 1000
}

// decide rolls the schedule and counts a hit.
func (in *Injector) decide(site, subject string, seq uint64, permille int) bool {
	if permille <= 0 {
		return false
	}
	if in.roll(site, subject, seq) >= uint64(permille) {
		return false
	}
	in.mu.Lock()
	in.counts[site]++
	in.mu.Unlock()
	return true
}

// BeforeShard implements sim.ShardFaultHook: on the schedule's say-so it
// sleeps (slow shard) and, on first attempts only, panics (worker crash).
// Restricting panics to attempt 1 keeps injected crashes transient: the
// isolation layer's re-run completes, which is what the completes ⇒
// bit-identical invariant needs. Deterministically-panicking workers are a
// different failure (covered by the unit tests' always-panic hooks), not a
// schedule this harness draws.
func (in *Injector) BeforeShard(shard, attempt int) {
	subject := fmt.Sprintf("shard-%d", shard)
	if in.cfg.SlowShard > 0 && in.decide("slow", subject, uint64(attempt), in.cfg.SlowShard) {
		time.Sleep(in.cfg.SlowDelay)
	}
	if attempt == 1 && in.cfg.WorkerPanic > 0 && in.decide("panic", subject, 1, in.cfg.WorkerPanic) {
		panic(fmt.Sprintf("faultinject: injected worker panic on %s", subject))
	}
}

// DropConn reports whether the serving daemon should abort this request
// (subject: a stable request identity such as "events:<first seq>"), per the
// seeded schedule. Each ask on a subject advances its sequence, so the
// retried request rolls a fresh decision and eventually lands.
func (in *Injector) DropConn(subject string) bool {
	if in == nil || in.cfg.DropConn <= 0 {
		return false
	}
	return in.decide("dropconn", subject, in.next("dropconn:"+subject), in.cfg.DropConn)
}

// SlowClient returns the stall to insert before transmitting the subject's
// batch (0 when the schedule says run clean).
func (in *Injector) SlowClient(subject string) time.Duration {
	if in == nil || in.cfg.SlowClient <= 0 {
		return 0
	}
	if in.decide("slowclient", subject, in.next("slowclient:"+subject), in.cfg.SlowClient) {
		return in.cfg.SlowClientDelay
	}
	return 0
}

// TornSnapshot reports whether this serving snapshot write should persist
// only a prefix (the rename still succeeds — a lying disk). The restore path
// must reject the torn file by checksum and fall back to an older snapshot
// or a full journal replay.
func (in *Injector) TornSnapshot(subject string) bool {
	if in == nil || in.cfg.TornSnapshot <= 0 {
		return false
	}
	return in.decide("tornsnap", subject, in.next("tornsnap:"+subject), in.cfg.TornSnapshot)
}

// Counts snapshots the number of injected faults per class.
func (in *Injector) Counts() map[string]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var t int64
	for _, v := range in.counts {
		t += v
	}
	return t
}

// String summarizes the injected-fault counts ("bitflip=2 panic=1 ...").
func (in *Injector) String() string {
	counts := in.Counts()
	if len(counts) == 0 {
		return "no faults injected"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}
