package faultinject

import (
	"os"
	"path/filepath"

	"repro/internal/sim"
)

// FS is the fault-injecting sim.CacheFS: every operation consults the
// injector's schedule, then (absent a fault) hits the real filesystem.
// Read faults are keyed by the entry filename, write faults by the content
// being written (temp filenames embed a random component; content is
// stable), rename faults by the destination name — see the package comment
// for why that makes the schedule reproducible under concurrency.
type FS struct{ in *Injector }

var _ sim.CacheFS = (*FS)(nil)

// FS returns the injector's filesystem seam, for
// sim.OpenDiskCacheFS(dir, inj.FS()).
func (in *Injector) FS() *FS { return &FS{in: in} }

// ReadFile implements sim.CacheFS: it may fail with an injected transient
// error or return a copy of the file with one bit flipped (the checksum on
// every disk entry must turn that into a miss, never a wrong result).
func (fs *FS) ReadFile(name string) ([]byte, error) {
	base := filepath.Base(name)
	seq := fs.in.next("read:" + base)
	if fs.in.decide("readerr", base, seq, fs.in.cfg.ReadErr) {
		return nil, &Error{Site: "readerr", Subject: base, Seq: seq}
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if len(data) > 0 && fs.in.decide("bitflip", base, seq, fs.in.cfg.BitFlip) {
		out := make([]byte, len(data))
		copy(out, data)
		bit := fs.in.roll("bitflip-pos", base, seq)
		out[bit%uint64(len(out))] ^= 1 << (bit % 8)
		return out, nil
	}
	return data, nil
}

// CreateTemp implements sim.CacheFS; the returned file injects write
// faults.
func (fs *FS) CreateTemp(dir, pattern string) (sim.CacheFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{f: f, in: fs.in}, nil
}

// Rename implements sim.CacheFS with injected transient failures, keyed by
// the destination entry name.
func (fs *FS) Rename(oldpath, newpath string) error {
	base := filepath.Base(newpath)
	seq := fs.in.next("rename:" + base)
	if fs.in.decide("renameerr", base, seq, fs.in.cfg.RenameErr) {
		return &Error{Site: "renameerr", Subject: base, Seq: seq}
	}
	return os.Rename(oldpath, newpath)
}

// Remove implements sim.CacheFS (passthrough: failing cleanup would only
// mask the fault being tested).
func (fs *FS) Remove(name string) error { return os.Remove(name) }

// file wraps a temp file with injected write faults.
type file struct {
	f  *os.File
	in *Injector
}

// Write may fail with an injected transient error, or lie: report full
// length while persisting only a prefix (a silently-truncating disk). The
// lie is only discoverable through the entry checksum on a later read —
// which is exactly the path under test. Decisions are keyed by a hash of
// the content, the one stable identity a randomly-named temp file has.
func (w *file) Write(p []byte) (int, error) {
	subject := contentKey(p)
	seq := w.in.next("write:" + subject)
	if w.in.decide("writeerr", subject, seq, w.in.cfg.WriteErr) {
		return 0, &Error{Site: "writeerr", Subject: subject, Seq: seq}
	}
	if len(p) > 1 && w.in.decide("shortwrite", subject, seq, w.in.cfg.ShortWrite) {
		if _, err := w.f.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return w.f.Write(p)
}

func (w *file) Close() error { return w.f.Close() }
func (w *file) Name() string { return w.f.Name() }

// contentKey is the stable write subject: an FNV-1a hash of the bytes,
// hex-ish encoded.
func contentKey(p []byte) string {
	const prime, offset = 1099511628211, 14695981039346656037
	h := uint64(offset)
	for _, b := range p {
		h = (h ^ uint64(b)) * prime
	}
	const hexdigits = "0123456789abcdef"
	var out [16]byte
	for i := range out {
		out[i] = hexdigits[(h>>(60-4*i))&0xf]
	}
	return string(out[:])
}
