package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Policy", "Q3-CSR")
	tab.AddRow("SPES", "0.108")
	tab.AddRowf("Defuse", 0.215)
	tab.AddRow("short") // padded
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Policy") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "0.2150") {
		t.Errorf("formatted float row = %q", lines[3])
	}
	// Columns align: "Q3-CSR" starts at the same offset in header and rows.
	col := strings.Index(lines[0], "Q3-CSR")
	if got := strings.Index(lines[2], "0.108"); got != col {
		t.Errorf("column misaligned: %d vs %d", got, col)
	}
}

func TestCDFSummary(t *testing.T) {
	var buf bytes.Buffer
	CDFSummary(&buf, "SPES", []float64{0, 0, 0.5, 1})
	out := buf.String()
	if !strings.Contains(out, "P75=") || !strings.Contains(out, "zero=50.0%") {
		t.Errorf("summary = %q", out)
	}
	buf.Reset()
	CDFSummary(&buf, "empty", nil)
	if !strings.Contains(buf.String(), "(empty)") {
		t.Errorf("empty summary = %q", buf.String())
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Errorf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Errorf("Bar clamp = %q", got)
	}
	if got := Bar(1, 0, 10); got != "" {
		t.Errorf("Bar zero-max = %q", got)
	}
	if got := Bar(-1, 10, 10); got != "" {
		t.Errorf("Bar negative = %q", got)
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "Memory", []string{"a", "bb"}, []float64{1, 2})
	out := buf.String()
	if !strings.Contains(out, "Memory") || !strings.Contains(out, "bb") {
		t.Errorf("chart = %q", out)
	}
	// The larger value has the longer bar.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bars not proportional: %q", out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("keys = %v", keys)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	got := Sparkline([]float64{0, 1})
	if len([]rune(got)) != 2 {
		t.Errorf("sparkline runes = %q", got)
	}
	if []rune(got)[0] != '▁' || []rune(got)[1] != '█' {
		t.Errorf("sparkline levels = %q", got)
	}
	flat := Sparkline([]float64{3, 3, 3})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat sparkline = %q", flat)
		}
	}
}
