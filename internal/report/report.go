// Package report renders experiment results as text: aligned tables, CDF
// summaries, and ASCII bar charts, so every figure of the paper can be
// regenerated on a terminal.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells; each argument is rendered with
// %v except float64, which uses 4 significant decimals.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CDFSummary writes the named distribution's quantiles in a single line,
// the textual equivalent of one curve in Figure 8.
func CDFSummary(w io.Writer, name string, xs []float64) {
	if len(xs) == 0 {
		fmt.Fprintf(w, "%-22s (empty)\n", name)
		return
	}
	qs := stats.Quantiles(xs, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0)
	zero := 0
	for _, x := range xs {
		if x == 0 {
			zero++
		}
	}
	fmt.Fprintf(w, "%-22s P25=%.3f P50=%.3f P75=%.3f P90=%.3f P95=%.3f max=%.3f zero=%.1f%%\n",
		name, qs[0], qs[1], qs[2], qs[3], qs[4], qs[5], 100*float64(zero)/float64(len(xs)))
}

// Bar renders a horizontal ASCII bar of value scaled against max into width
// characters.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// BarChart writes labeled horizontal bars for each (label, value), scaled to
// the maximum value, preserving input order.
func BarChart(w io.Writer, title string, labels []string, values []float64) {
	fmt.Fprintln(w, title)
	max := 0.0
	wlab := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > wlab {
			wlab = len(labels[i])
		}
	}
	for i, v := range values {
		fmt.Fprintf(w, "  %s  %8.4f  %s\n", pad(labels[i], wlab), v, Bar(v, max, 40))
	}
}

// SortedKeys returns a map's keys sorted lexicographically (stable rendering
// of per-type breakdowns).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sparkline draws a 1-line unicode sparkline of xs (used for the concept
// shift and temporal locality figure dumps).
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	min, max := stats.MinMax(xs)
	span := max - min
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if span > 0 {
			idx = int((x - min) / span * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
